"""AeroDrome — Algorithm 1 of the paper, the basic vector-clock checker.

A single-pass, linear-time algorithm detecting violations of conflict
serializability. The state consists of vector clocks:

* ``C_t`` — timestamp of the last event of thread ``t`` (init ``⊥[1/t]``);
* ``C⊲_t`` — timestamp of the last begin event of ``t`` (init ``⊥``);
* ``L_ℓ`` — timestamp of the last release of lock ``ℓ``, with the scalar
  ``lastRelThr_ℓ`` remembering the releasing thread;
* ``W_x`` — timestamp of the last write to ``x``, with ``lastWThr_x``;
* ``R_{t,x}`` — timestamp of the last read of ``x`` by thread ``t``.

The timestamps implicitly capture the ⋖E relation (Definition 2): the
procedure ``checkAndGet(clk, t)`` declares a violation when ``C⊲_t ⊑ clk``
and ``t`` has an active transaction — i.e. when, per Theorem 2, some event
⋖E-after the begin of ``t``'s active transaction is ⋖E-before the current
event of ``t``, closing a cycle of transactions.

Nested transactions are flattened (only the outermost begin/end pair is
processed, Section 4.1.4) and unary transactions — events outside any
block — never trigger the violation check.

This module follows the paper's pseudocode line by line, trading speed for
auditability. :mod:`repro.core.aerodrome_opt` implements the optimized
variant (Appendix C) used by the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..trace.events import Event, Op
from .checker import StreamingChecker
from .vector_clock import ThreadRegistry, VectorClock
from .violations import Violation


class AeroDromeChecker(StreamingChecker):
    """Streaming implementation of Algorithm 1.

    Feed events with :meth:`process` (or :meth:`run` over an iterable);
    the first violation is recorded in :attr:`violation` and processing
    stops.
    """

    algorithm = "aerodrome-basic"

    def __init__(self) -> None:
        super().__init__()
        self._threads = ThreadRegistry()
        self._clock: Dict[int, VectorClock] = {}  # C_t
        self._begin_clock: Dict[int, VectorClock] = {}  # C⊲_t
        self._depth: Dict[int, int] = {}  # transaction nesting depth
        self._lock_clock: Dict[str, VectorClock] = {}  # L_ℓ
        self._last_rel_thr: Dict[str, int] = {}  # lastRelThr_ℓ
        self._write_clock: Dict[str, VectorClock] = {}  # W_x
        self._last_w_thr: Dict[str, int] = {}  # lastWThr_x
        self._read_clock: Dict[str, Dict[int, VectorClock]] = {}  # R_{t,x}

    # -- state helpers -------------------------------------------------------

    def _thread(self, name: str) -> int:
        """Intern a thread name, initializing its clocks on first sight."""
        t = self._threads.index_of(name)
        if t not in self._clock:
            self._clock[t] = VectorClock.unit(t)
            self._begin_clock[t] = VectorClock.bottom()
            self._depth[t] = 0
        return t

    def _has_active_transaction(self, t: int) -> bool:
        return self._depth.get(t, 0) > 0

    def thread_clock(self, name: str) -> VectorClock:
        """Read-only view of C_t (⊥ for threads not yet observed) —
        exposed for tests and expository code."""
        if name not in self._threads:
            return VectorClock.bottom()
        return self._clock[self._threads.index_of(name)].copy()

    def begin_clock(self, name: str) -> VectorClock:
        """Read-only view of C⊲_t (⊥ for threads not yet observed)."""
        if name not in self._threads:
            return VectorClock.bottom()
        return self._begin_clock[self._threads.index_of(name)].copy()

    def write_clock(self, variable: str) -> VectorClock:
        """Read-only view of W_x (⊥ if x has not been written)."""
        clock = self._write_clock.get(variable)
        return clock.copy() if clock is not None else VectorClock.bottom()

    def lock_clock(self, lock: str) -> VectorClock:
        """Read-only view of L_ℓ (⊥ if ℓ has not been released)."""
        clock = self._lock_clock.get(lock)
        return clock.copy() if clock is not None else VectorClock.bottom()

    def read_clock(self, thread: str, variable: str) -> VectorClock:
        """Read-only view of R_{t,x} (⊥ if t has not read x)."""
        per_thread = self._read_clock.get(variable)
        if per_thread is not None and thread in self._threads:
            clock = per_thread.get(self._threads.index_of(thread))
            if clock is not None:
                return clock.copy()
        return VectorClock.bottom()

    # -- checkAndGet (paper lines 9-12) -----------------------------------

    def _check_and_get(
        self, clk: VectorClock, t: int, event: Event, site: str
    ) -> Optional[Violation]:
        """``checkAndGet(clk, t)``: check C⊲_t ⊑ clk, then C_t ⊔= clk."""
        violation: Optional[Violation] = None
        if self._has_active_transaction(t) and self._begin_clock[t].leq(clk):
            violation = Violation(
                event_idx=event.idx,
                thread=self._threads.name_of(t),
                site=site,
                details=(
                    f"C⊲_{self._threads.name_of(t)} ⊑ {clk!r} with an "
                    "active transaction"
                ),
            )
        self._clock[t].join(clk)
        return violation

    # -- event handlers ------------------------------------------------------

    def _acquire(self, t: int, event: Event) -> Optional[Violation]:
        lock = event.target
        assert lock is not None
        if self._last_rel_thr.get(lock) != t:
            clock = self._lock_clock.get(lock)
            if clock is not None:
                return self._check_and_get(clock, t, event, "acquire")
        return None

    def _release(self, t: int, event: Event) -> None:
        lock = event.target
        assert lock is not None
        self._lock_clock[lock] = self._clock[t].copy()
        self._last_rel_thr[lock] = t

    def _fork(self, t: int, event: Event) -> None:
        u = self._thread(event.target)  # type: ignore[arg-type]
        self._clock[u].join(self._clock[t])

    def _join(self, t: int, event: Event) -> Optional[Violation]:
        u = self._thread(event.target)  # type: ignore[arg-type]
        return self._check_and_get(self._clock[u], t, event, "join")

    def _read(self, t: int, event: Event) -> Optional[Violation]:
        variable = event.target
        assert variable is not None
        if self._last_w_thr.get(variable) != t:
            clock = self._write_clock.get(variable)
            if clock is not None:
                violation = self._check_and_get(clock, t, event, "read")
                if violation is not None:
                    return violation
        self._read_clock.setdefault(variable, {})[t] = self._clock[t].copy()
        return None

    def _write(self, t: int, event: Event) -> Optional[Violation]:
        variable = event.target
        assert variable is not None
        if self._last_w_thr.get(variable) != t:
            clock = self._write_clock.get(variable)
            if clock is not None:
                violation = self._check_and_get(clock, t, event, "write-write")
                if violation is not None:
                    return violation
        for u, read_clock in self._read_clock.get(variable, {}).items():
            if u != t:
                violation = self._check_and_get(read_clock, t, event, "write-read")
                if violation is not None:
                    return violation
        self._write_clock[variable] = self._clock[t].copy()
        self._last_w_thr[variable] = t
        return None

    def _begin(self, t: int, event: Event) -> None:
        depth = self._depth[t]
        self._depth[t] = depth + 1
        if depth > 0:
            return  # nested begin: only the outermost pair counts
        clock = self._clock[t]
        clock.increment(t)
        self._begin_clock[t] = clock.copy()

    def _end(self, t: int, event: Event) -> Optional[Violation]:
        depth = self._depth[t]
        if depth == 0:
            raise ValueError(
                f"end without matching begin at event {event.idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        self._depth[t] = depth - 1
        if depth > 1:
            return None  # nested end
        begin_clock = self._begin_clock[t]
        my_clock = self._clock[t]
        # Propagate the completed transaction's time into every thread
        # that already observed an event of this transaction (lines 38-40):
        # the checkAndGet there may discover a cycle closed by u's active
        # transaction.
        for u, u_clock in self._clock.items():
            if u != t and begin_clock.leq(u_clock):
                violation = self._check_and_get(my_clock, u, event, "end")
                if violation is not None:
                    return violation
        # ... and into every lock/write/read clock that is after the begin
        # (lines 41-46), so future readers of those clocks inherit the
        # ⋖E-edge through this now-completed transaction.
        for lock, clock in self._lock_clock.items():
            if begin_clock.leq(clock):
                clock.join(my_clock)
        for variable, clock in self._write_clock.items():
            if begin_clock.leq(clock):
                clock.join(my_clock)
        for variable, per_thread in self._read_clock.items():
            for u, clock in per_thread.items():
                if begin_clock.leq(clock):
                    clock.join(my_clock)
        # The depth is already 0: t no longer has an active transaction.
        return None

    def state_summary(self) -> Dict[str, int]:
        """Clock counts — the Theorem 4 space bound, observable.

        ``read_clocks`` is the O(|Thr|·V) term that Algorithm 2
        eliminates; compare with the optimized checker's summary.
        """
        read_clocks = sum(len(per) for per in self._read_clock.values())
        return {
            "events_processed": self.events_processed,
            "thread_clocks": 2 * len(self._clock),  # C_t and C⊲_t
            "lock_clocks": len(self._lock_clock),
            "write_clocks": len(self._write_clock),
            "read_clocks": read_clocks,
            "total_clocks": (
                2 * len(self._clock)
                + len(self._lock_clock)
                + len(self._write_clock)
                + read_clocks
            ),
        }

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Process one event; return the violation if this event closes one.

        After a violation has been found the checker is *stopped*:
        further calls raise :class:`RuntimeError` (the paper's algorithm
        exits at the first violation).
        """
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        t = self._thread(event.thread)
        op = event.op
        violation: Optional[Violation]
        if op is Op.READ:
            violation = self._read(t, event)
        elif op is Op.WRITE:
            violation = self._write(t, event)
        elif op is Op.ACQUIRE:
            violation = self._acquire(t, event)
        elif op is Op.RELEASE:
            self._release(t, event)
            violation = None
        elif op is Op.BEGIN:
            self._begin(t, event)
            violation = None
        elif op is Op.END:
            violation = self._end(t, event)
        elif op is Op.FORK:
            self._fork(t, event)
            violation = None
        elif op is Op.JOIN:
            violation = self._join(t, event)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation
