"""MetaInfo analysis.

Reproduces RAPID's ``MetaInfo`` class (paper, Appendix D.5.5): a single
pass over a trace collecting the characteristics reported in Columns 2–6
of Tables 1 and 2 — number of events, threads, locks, variables (memory
locations), and transactions — plus a per-operation histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from .events import Event, Op
from .trace import Trace


@dataclass(frozen=True)
class MetaInfo:
    """Summary statistics of a trace (Columns 2–6 of the paper's tables)."""

    events: int
    threads: int
    locks: int
    variables: int
    transactions: int
    op_counts: Dict[Op, int]

    @property
    def reads(self) -> int:
        return self.op_counts[Op.READ]

    @property
    def writes(self) -> int:
        return self.op_counts[Op.WRITE]

    @property
    def memory_accesses(self) -> int:
        return self.reads + self.writes

    def as_row(self) -> Dict[str, int]:
        """The table-row view used by the benchmark harness."""
        return {
            "events": self.events,
            "threads": self.threads,
            "locks": self.locks,
            "variables": self.variables,
            "transactions": self.transactions,
        }

    def __str__(self) -> str:
        return (
            f"events={self.events} threads={self.threads} locks={self.locks} "
            f"variables={self.variables} transactions={self.transactions}"
        )


def collect_metainfo(events: Iterable[Event]) -> MetaInfo:
    """Single streaming pass computing :class:`MetaInfo`.

    Accepts any iterable of events, so it can run over a trace file stream
    without materialising it. Transactions are counted as outermost
    begin events (the paper's tables count specification-induced
    transactions, not unary ones).
    """
    threads: Set[str] = set()
    locks: Set[str] = set()
    variables: Set[str] = set()
    op_counts: Dict[Op, int] = {op: 0 for op in Op}
    depth: Dict[str, int] = {}
    transactions = 0
    total = 0

    for event in events:
        total += 1
        threads.add(event.thread)
        op_counts[event.op] += 1
        op = event.op
        if op is Op.READ or op is Op.WRITE:
            variables.add(event.target)  # type: ignore[arg-type]
        elif op is Op.ACQUIRE or op is Op.RELEASE:
            locks.add(event.target)  # type: ignore[arg-type]
        elif op is Op.FORK or op is Op.JOIN:
            threads.add(event.target)  # type: ignore[arg-type]
        elif op is Op.BEGIN:
            d = depth.get(event.thread, 0)
            if d == 0:
                transactions += 1
            depth[event.thread] = d + 1
        elif op is Op.END:
            depth[event.thread] = depth.get(event.thread, 0) - 1

    return MetaInfo(
        events=total,
        threads=len(threads),
        locks=len(locks),
        variables=len(variables),
        transactions=transactions,
        op_counts=op_counts,
    )


def metainfo(trace: Trace) -> MetaInfo:
    """:func:`collect_metainfo` over a materialised trace."""
    return collect_metainfo(trace)
