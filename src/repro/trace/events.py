"""Event model for execution traces.

A trace of a concurrent program is a sequence of events (paper, Section 2).
Each event is a pair ``(thread, operation)`` where the operation is one of:

* ``r(x)`` / ``w(x)`` — read from / write to a memory location ``x``
* ``acq(l)`` / ``rel(l)`` — acquire / release of a lock ``l``
* ``fork(u)`` / ``join(u)`` — fork / join of a thread ``u``
* ``begin`` / ``end`` — begin (⊲) / end (⊳) of an atomic block

Threads, memory locations and locks are identified by strings. Analyzers
intern these to dense integer indices internally; the event model itself
stays simple and human-readable.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional


class Op(IntEnum):
    """The eight operation kinds an event can carry."""

    READ = 0
    WRITE = 1
    ACQUIRE = 2
    RELEASE = 3
    FORK = 4
    JOIN = 5
    BEGIN = 6
    END = 7


#: Operations whose ``target`` is a memory location.
MEMORY_OPS = frozenset({Op.READ, Op.WRITE})
#: Operations whose ``target`` is a lock.
LOCK_OPS = frozenset({Op.ACQUIRE, Op.RELEASE})
#: Operations whose ``target`` is another thread.
THREAD_OPS = frozenset({Op.FORK, Op.JOIN})
#: Operations with no target (transaction markers).
MARKER_OPS = frozenset({Op.BEGIN, Op.END})

#: Canonical short mnemonic for each operation, used by the ``.std`` format.
OP_MNEMONIC = {
    Op.READ: "r",
    Op.WRITE: "w",
    Op.ACQUIRE: "acq",
    Op.RELEASE: "rel",
    Op.FORK: "fork",
    Op.JOIN: "join",
    Op.BEGIN: "begin",
    Op.END: "end",
}

#: Inverse of :data:`OP_MNEMONIC`.
MNEMONIC_OP = {v: k for k, v in OP_MNEMONIC.items()}


class Event:
    """A single event of an execution trace.

    Attributes:
        idx: Position of the event in its trace (0-based). Events created
            standalone carry ``idx = -1`` until appended to a
            :class:`~repro.trace.trace.Trace`.
        thread: Identifier of the thread performing the event.
        op: The operation kind (:class:`Op`).
        target: The operation operand — a memory location for read/write,
            a lock for acquire/release, a thread for fork/join. For
            begin/end events the target is an *optional* method label used
            by atomicity-specification filtering
            (:mod:`repro.trace.filters`); analyzers ignore it.
    """

    __slots__ = ("idx", "thread", "op", "target")

    def __init__(
        self,
        thread: str,
        op: Op,
        target: Optional[str] = None,
        idx: int = -1,
    ) -> None:
        if op not in MARKER_OPS and target is None:
            raise ValueError(f"{op.name} events require a target")
        self.idx = idx
        self.thread = thread
        self.op = op
        self.target = target

    # -- predicates --------------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.op is Op.READ

    @property
    def is_write(self) -> bool:
        return self.op is Op.WRITE

    @property
    def is_acquire(self) -> bool:
        return self.op is Op.ACQUIRE

    @property
    def is_release(self) -> bool:
        return self.op is Op.RELEASE

    @property
    def is_fork(self) -> bool:
        return self.op is Op.FORK

    @property
    def is_join(self) -> bool:
        return self.op is Op.JOIN

    @property
    def is_begin(self) -> bool:
        return self.op is Op.BEGIN

    @property
    def is_end(self) -> bool:
        return self.op is Op.END

    @property
    def is_memory_access(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_lock_op(self) -> bool:
        return self.op in LOCK_OPS

    @property
    def is_marker(self) -> bool:
        return self.op in MARKER_OPS

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Event({self.idx}, {self.thread}, {format_op(self.op, self.target)})"

    def __str__(self) -> str:
        return f"{self.thread}|{format_op(self.op, self.target)}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.thread == other.thread
            and self.op == other.op
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self.thread, self.op, self.target))


def format_op(op: Op, target: Optional[str]) -> str:
    """Render an operation as ``r(x)``, ``acq(l)``, ``begin``, etc."""
    mnemonic = OP_MNEMONIC[op]
    if target is None:
        return mnemonic
    return f"{mnemonic}({target})"


# -- convenience constructors ----------------------------------------------
#
# These make tests and examples read like the paper's traces:
#   read("t1", "x"), begin("t2"), fork("t1", "t2"), ...


def read(thread: str, variable: str) -> Event:
    """``<thread, r(variable)>``"""
    return Event(thread, Op.READ, variable)


def write(thread: str, variable: str) -> Event:
    """``<thread, w(variable)>``"""
    return Event(thread, Op.WRITE, variable)


def acquire(thread: str, lock: str) -> Event:
    """``<thread, acq(lock)>``"""
    return Event(thread, Op.ACQUIRE, lock)


def release(thread: str, lock: str) -> Event:
    """``<thread, rel(lock)>``"""
    return Event(thread, Op.RELEASE, lock)


def fork(thread: str, child: str) -> Event:
    """``<thread, fork(child)>``"""
    return Event(thread, Op.FORK, child)


def join(thread: str, child: str) -> Event:
    """``<thread, join(child)>``"""
    return Event(thread, Op.JOIN, child)


def begin(thread: str, label: Optional[str] = None) -> Event:
    """``<thread, ⊲>`` — begin of an atomic block (optionally labeled)."""
    return Event(thread, Op.BEGIN, label)


def end(thread: str, label: Optional[str] = None) -> Event:
    """``<thread, ⊳>`` — end of an atomic block (optionally labeled)."""
    return Event(thread, Op.END, label)
