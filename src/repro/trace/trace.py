"""Trace container.

A :class:`Trace` is an ordered sequence of :class:`~repro.trace.events.Event`
objects with convenience accessors for the entities (threads, variables,
locks) that appear in it. Appending an event stamps its ``idx`` field with
its position, so events can always be located back in their trace.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Union, overload

from .events import Event, Op


class Trace:
    """An ordered sequence of events produced by a concurrent program."""

    __slots__ = ("name", "_events")

    def __init__(
        self,
        events: Optional[Iterable[Event]] = None,
        name: str = "trace",
    ) -> None:
        self.name = name
        self._events: List[Event] = []
        if events is not None:
            self.extend(events)

    # -- construction ------------------------------------------------------

    def append(self, event: Event) -> Event:
        """Append ``event``, stamping its position into ``event.idx``."""
        event.idx = len(self._events)
        self._events.append(event)
        return event

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @overload
    def __getitem__(self, index: int) -> Event: ...

    @overload
    def __getitem__(self, index: slice) -> "Trace": ...

    def __getitem__(self, index: Union[int, slice]) -> Union[Event, "Trace"]:
        if isinstance(index, slice):
            sliced = Trace(name=f"{self.name}[{index.start}:{index.stop}]")
            for event in self._events[index]:
                sliced.append(Event(event.thread, event.op, event.target))
            return sliced
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} events)"

    # -- entity accessors ----------------------------------------------------

    @property
    def events(self) -> Sequence[Event]:
        """The underlying event list (do not mutate)."""
        return self._events

    def threads(self) -> Set[str]:
        """All thread identifiers appearing in the trace.

        Includes fork/join targets even if the child never performed an
        event of its own.
        """
        found: Set[str] = set()
        for event in self._events:
            found.add(event.thread)
            if event.op is Op.FORK or event.op is Op.JOIN:
                assert event.target is not None
                found.add(event.target)
        return found

    def variables(self) -> Set[str]:
        """All memory locations read or written in the trace."""
        return {
            e.target  # type: ignore[misc]
            for e in self._events
            if e.op is Op.READ or e.op is Op.WRITE
        }

    def locks(self) -> Set[str]:
        """All locks acquired or released in the trace."""
        return {
            e.target  # type: ignore[misc]
            for e in self._events
            if e.op is Op.ACQUIRE or e.op is Op.RELEASE
        }

    def prefix(self, length: int) -> "Trace":
        """The prefix containing the first ``length`` events (paper: σ_i)."""
        return self[:length]

    def project(self, thread: str) -> List[Event]:
        """All events of ``thread``, in trace order."""
        return [e for e in self._events if e.thread == thread]

    def counts_by_op(self) -> dict:
        """Histogram of event counts per operation kind."""
        histogram = {op: 0 for op in Op}
        for event in self._events:
            histogram[event.op] += 1
        return histogram


def trace_of(*events: Event, name: str = "trace") -> Trace:
    """Build a trace from events given positionally (handy in tests)."""
    return Trace(events, name=name)
