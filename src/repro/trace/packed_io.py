"""Persistent zero-copy columnar storage for packed traces.

``repro.trace.packed`` made analysis cheap by compiling a trace to dense
integer columns *once* — but "once" was still once **per process**. The
cold-start path (text parse → per-event ``Event`` objects → ``pack()``)
dwarfs the analysis itself on the table-1 workloads, and every run paid
it again. This module makes the compiled form durable:

* :func:`save_packed` writes a :class:`~repro.trace.packed.PackedTrace`
  as a versioned on-disk column store — the ``repro-packed/1`` format;
* :func:`load_packed` ``mmap``-s the file back and wraps the event
  columns in :class:`memoryview` objects directly over the page cache —
  **O(1) work per event**: only the (tiny) interner string tables are
  materialized. Pack once, analyze many times;
* :func:`parse_packed` is the fused text→packed streaming parser: it
  interns straight out of the line tokenizer and never constructs an
  ``Event`` object at all — the fastest route from ``.std`` text to a
  packed trace when no ``.rpt`` file exists yet;
* :func:`sniff_format` / :func:`load_any` dispatch on the magic bytes so
  the CLI can accept text, ``REPROTR1`` binary and ``repro-packed/1``
  files interchangeably.

``repro-packed/1`` layout (all integers little-endian)::

    offset  field
    0       magic            8 bytes  b"RPACKED1"
    8       trace name       u16 length + UTF-8 bytes
    .       string tables    threads, variables, locks, labels — each:
                             u32 count, then per entry u16 length + UTF-8
    .       event count n    u64
    .       zero padding to the next 8-byte boundary
    .       thread column    n × i32
    .       zero padding to the next 8-byte boundary
    .       op column        n × i8
    .       zero padding to the next 8-byte boundary
    .       target column    n × i32

Columns are 8-byte aligned so a loader may overlay them with typed views
(or foreign readers with ``numpy.memmap``) without re-copying. A mapped
trace is **read-only**: appending raises :class:`PackedTraceError`.
Forked worker processes (:mod:`repro.api.parallel`) inherit the mapping
itself, so co-running analyses across processes shares one physical copy
of the columns.
"""

from __future__ import annotations

import io
import mmap
import struct
import sys
from array import array
from pathlib import Path
from typing import BinaryIO, Iterable, List, Optional, TextIO, Tuple, Union

from .events import Op
from .packed import NO_TARGET, PackedTrace
from .parser import TraceParseError, parse_fields
from .trace import Trace

#: Magic prefix of the ``repro-packed/1`` format.
MAGIC = b"RPACKED1"

#: Human-readable schema tag (documented in docs/PERF.md).
SCHEMA = "repro-packed/1"

#: Bytes per entry of the thread/target columns (i32) and op column (i8).
_COLUMN_ALIGN = 8

#: Highest valid op code, for the optional deep verification pass.
_MAX_OP = max(int(op) for op in Op)


class PackedTraceError(ValueError):
    """The input is not a valid ``repro-packed/1`` trace file."""


def _check_itemsizes() -> None:
    # The format stores i32/i8 columns; CPython's array('i')/array('b')
    # match on every supported platform. Fail loudly on exotica rather
    # than writing a file other readers cannot interpret.
    if array("i").itemsize != 4 or array("b").itemsize != 1:
        raise PackedTraceError(
            "platform int sizes do not match the repro-packed/1 format"
        )


# -- writing ----------------------------------------------------------------


def _write_string(stream: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise PackedTraceError(f"string too long for format: {text[:40]!r}...")
    stream.write(struct.pack("<H", len(data)))
    stream.write(data)


def _write_table(stream: BinaryIO, names: Iterable[str]) -> None:
    names = list(names)
    stream.write(struct.pack("<I", len(names)))
    for name in names:
        _write_string(stream, name)


def _column_bytes(column, code: str) -> bytes:
    """The raw little-endian bytes of one column."""
    if isinstance(column, memoryview):  # a mapped trace being re-saved
        data = column.tobytes()
        if sys.byteorder == "little":
            return data
        swapped = array(code)
        swapped.frombytes(data)
        swapped.byteswap()
        return swapped.tobytes()
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = array(code, column)
    swapped.byteswap()
    return swapped.tobytes()


def write_packed(packed: PackedTrace, stream: BinaryIO) -> None:
    """Serialize ``packed`` to an open binary stream (``repro-packed/1``)."""
    _check_itemsizes()
    stream.write(MAGIC)
    _write_string(stream, packed.name)
    for interner in (packed.threads, packed.variables, packed.locks, packed.labels):
        _write_table(stream, interner.names())
    threads, ops, targets = packed.arrays()
    n = len(ops)
    stream.write(struct.pack("<Q", n))

    # Header sizes are data-dependent, so track the position manually
    # when the stream cannot seek (e.g. a pipe).
    if stream.seekable():
        position = stream.tell()
    else:
        position = (
            len(MAGIC)
            + 2 + len(packed.name.encode("utf-8"))
            + sum(
                4 + sum(2 + len(s.encode("utf-8")) for s in interner.names())
                for interner in (
                    packed.threads, packed.variables, packed.locks, packed.labels
                )
            )
            + 8
        )
    # Each column starts on an 8-byte boundary (zero padding before it);
    # nothing follows the last column.
    for column, code in ((threads, "i"), (ops, "b"), (targets, "i")):
        gap = -position % _COLUMN_ALIGN
        if gap:
            stream.write(b"\x00" * gap)
        data = _column_bytes(column, code)
        stream.write(data)
        position += gap + len(data)


def save_packed(
    trace: Union[PackedTrace, Trace, Iterable], destination: Union[str, Path]
) -> None:
    """Write a packed trace to a ``.rpt`` file (packing first if needed)."""
    from .packed import pack

    packed = pack(trace)
    with Path(destination).open("wb") as stream:
        write_packed(packed, stream)


# -- reading ----------------------------------------------------------------


def _read_exact(buffer: memoryview, offset: int, count: int) -> memoryview:
    if offset + count > len(buffer):
        raise PackedTraceError("truncated packed trace")
    return buffer[offset : offset + count]


def _read_string(buffer: memoryview, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack("<H", _read_exact(buffer, offset, 2))
    data = _read_exact(buffer, offset + 2, length)
    try:
        return bytes(data).decode("utf-8"), offset + 2 + length
    except UnicodeDecodeError as error:
        raise PackedTraceError(f"corrupt string table entry: {error}") from error


def _read_table(buffer: memoryview, offset: int) -> Tuple[List[str], int]:
    (count,) = struct.unpack("<I", _read_exact(buffer, offset, 4))
    offset += 4
    if count > len(buffer):  # cheap sanity bound before looping
        raise PackedTraceError(f"implausible string table size {count}")
    names: List[str] = []
    for _ in range(count):
        name, offset = _read_string(buffer, offset)
        names.append(name)
    return names, offset


class MappedPackedTrace(PackedTrace):
    """A :class:`PackedTrace` whose columns live in an ``mmap``-ed file.

    The event columns are :class:`memoryview` casts straight over the
    mapping — no per-event work happened at load time and no copy of
    the payload exists in the Python heap. The trace is therefore
    read-only; :meth:`append` raises. Everything read-shaped —
    iteration, indexing, slicing, ``arrays()``, the checkers' packed
    dispatch loops — works unchanged.

    Pickling re-opens the source file (the mapping itself cannot
    cross a ``spawn`` boundary; ``fork`` children inherit it for free).
    """

    __slots__ = ("path", "_mmap")

    def __init__(self, name: str, path: Optional[Path]) -> None:
        super().__init__(name=name)
        self.path = path
        self._mmap: Optional[mmap.mmap] = None

    def append(self, event) -> None:
        raise PackedTraceError(
            "mapped packed traces are read-only; "
            "copy via pack(trace.to_trace()) to get a mutable one"
        )

    def __reduce__(self):
        if self.path is None:
            raise PackedTraceError(
                "cannot pickle a mapped trace loaded from an anonymous stream"
            )
        return (load_packed, (str(self.path),))


def read_packed(
    buffer: Union[bytes, bytearray, memoryview, mmap.mmap],
    name_hint: str = "",
    path: Optional[Path] = None,
    verify: bool = False,
) -> MappedPackedTrace:
    """Overlay a ``repro-packed/1`` buffer as a read-only packed trace.

    Only the header and the string tables are decoded; the three event
    columns are wrapped zero-copy (on little-endian hosts) as typed
    :class:`memoryview` columns. Structural integrity — magic, table
    decoding, declared sizes vs. actual buffer size — is always checked;
    ``verify=True`` additionally bounds-checks every record (O(n), for
    untrusted files).

    Raises:
        PackedTraceError: On any structural corruption.
    """
    _check_itemsizes()
    view = memoryview(buffer)
    if bytes(_read_exact(view, 0, len(MAGIC))) != MAGIC:
        raise PackedTraceError("bad magic: not a repro-packed/1 trace")
    offset = len(MAGIC)
    name, offset = _read_string(view, offset)
    tables = []
    for _ in range(4):
        table, offset = _read_table(view, offset)
        tables.append(table)
    (n,) = struct.unpack("<Q", _read_exact(view, offset, 8))
    offset += 8

    def aligned(position: int) -> int:
        return position + (-position % _COLUMN_ALIGN)

    thread_off = aligned(offset)
    op_off = aligned(thread_off + 4 * n)
    target_off = aligned(op_off + n)
    end = target_off + 4 * n
    if end > len(view):
        raise PackedTraceError(
            f"truncated packed trace: need {end} bytes, have {len(view)}"
        )

    packed = MappedPackedTrace(name=name or name_hint or "trace", path=path)
    threads, variables, locks, labels = tables
    for interner, names in (
        (packed.threads, threads),
        (packed.variables, variables),
        (packed.locks, locks),
        (packed.labels, labels),
    ):
        for entry in names:
            interner.index_of(entry)

    if sys.byteorder == "little":
        packed._thread = view[thread_off : thread_off + 4 * n].cast("i")
        packed._op = view[op_off : op_off + n].cast("b")
        packed._target = view[target_off : target_off + 4 * n].cast("i")
    else:  # pragma: no cover - big-endian fallback pays one copy
        for slot, off, size, code in (
            ("_thread", thread_off, 4 * n, "i"),
            ("_op", op_off, n, "b"),
            ("_target", target_off, 4 * n, "i"),
        ):
            column = array(code)
            column.frombytes(bytes(view[off : off + size]))
            column.byteswap()
            setattr(packed, slot, column)

    if verify:
        _verify_records(packed)
    return packed


def _verify_records(packed: PackedTrace) -> None:
    """O(n) bounds check of every record against the string tables."""
    from .packed import _NAMESPACE_OF_OP  # noqa: PLC2701 - same package

    sizes = (
        len(packed.variables),
        len(packed.locks),
        len(packed.threads),
        len(packed.labels),
    )
    n_threads = len(packed.threads)
    threads, ops, targets = packed.arrays()
    for i in range(len(ops)):
        op = ops[i]
        if not 0 <= op <= _MAX_OP:
            raise PackedTraceError(f"corrupt event record {i}: op code {op}")
        if not 0 <= threads[i] < n_threads:
            raise PackedTraceError(
                f"corrupt event record {i}: thread index {threads[i]}"
            )
        target = targets[i]
        if target == NO_TARGET:
            if op < int(Op.BEGIN):  # only markers may omit the target
                raise PackedTraceError(
                    f"corrupt event record {i}: {Op(op).name} without target"
                )
        elif not 0 <= target < sizes[_NAMESPACE_OF_OP[op]]:
            raise PackedTraceError(
                f"corrupt event record {i}: target index {target}"
            )


def load_packed(
    source: Union[str, Path], verify: bool = False
) -> MappedPackedTrace:
    """``mmap`` a ``.rpt`` file into a read-only packed trace.

    Cold-start cost is O(string tables), not O(events): the columns stay
    in the page cache and are faulted in lazily as analyses touch them.
    The file must outlive the returned trace (the mapping holds it open).
    """
    path = Path(source)
    with path.open("rb") as handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:  # zero-length file cannot be mapped
            raise PackedTraceError(f"cannot map {path}: {error}") from error
    packed = read_packed(mapping, name_hint=path.stem, path=path, verify=verify)
    packed._mmap = mapping
    return packed


# -- fused text -> packed parsing -------------------------------------------


def parse_packed_lines(
    lines: Iterable[str], name: str = "trace"
) -> PackedTrace:
    """Stream ``.std`` lines straight into a :class:`PackedTrace`.

    The fused fast path: tokenize each line (same grammar and errors as
    :func:`repro.trace.parser.parse_line`) and intern the fields
    directly into the packed columns — no ``Event`` objects, no
    intermediate :class:`Trace`. Distinct lines are memoized, so the
    per-event cost on realistic traces (few distinct sites, many
    repetitions) is one dict hit plus three array appends.
    """
    packed = PackedTrace(name=name)
    thread_of = packed.threads.index_of
    interner_of_ns = (
        packed.variables.index_of,
        packed.locks.index_of,
        thread_of,
        packed.labels.index_of,
    )
    # Local aliases and the line memo: dense traces repeat a small set
    # of distinct lines, and interner indices never change once issued.
    from .packed import _NAMESPACE_OF_OP  # noqa: PLC2701 - same package

    threads_arr = packed._thread
    ops_arr = packed._op
    targets_arr = packed._target
    memo: dict = {}
    memo_get = memo.get
    for line_number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        record = memo_get(stripped)
        if record is None:
            thread, op, target = parse_fields(stripped, line_number)
            op = int(op)
            record = (
                thread_of(thread),
                op,
                NO_TARGET
                if target is None
                else interner_of_ns[_NAMESPACE_OF_OP[op]](target),
            )
            memo[stripped] = record
        threads_arr.append(record[0])
        ops_arr.append(record[1])
        targets_arr.append(record[2])
    return packed


def parse_packed(
    source: Union[str, Path, TextIO], name: str = ""
) -> PackedTrace:
    """Parse a ``.std`` file (path or open text stream) into a packed trace."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="utf-8") as handle:
            return parse_packed_lines(handle, name=name or path.stem)
    return parse_packed_lines(source, name=name or "trace")


def parse_packed_text(text: str, name: str = "trace") -> PackedTrace:
    """Parse a complete trace from a string, straight to packed columns."""
    return parse_packed_lines(io.StringIO(text), name=name)


# -- format sniffing --------------------------------------------------------

#: Formats :func:`sniff_format` can report.
FORMAT_PACKED = "packed"
FORMAT_BINARY = "binary"
FORMAT_TEXT = "text"


def sniff_format(source: Union[str, Path]) -> str:
    """Classify a trace file by its magic bytes.

    Returns ``"packed"`` (``repro-packed/1``), ``"binary"``
    (``REPROTR1``) or ``"text"`` (anything else — the ``.std`` grammar
    has no magic).
    """
    from .binary import MAGIC as BINARY_MAGIC

    with Path(source).open("rb") as handle:
        head = handle.read(max(len(MAGIC), len(BINARY_MAGIC)))
    if head.startswith(MAGIC):
        return FORMAT_PACKED
    if head.startswith(BINARY_MAGIC):
        return FORMAT_BINARY
    return FORMAT_TEXT


def load_any(
    source: Union[str, Path], prefer_packed: bool = False
) -> Union[Trace, PackedTrace]:
    """Load a trace of any on-disk format, sniffing the magic bytes.

    ``repro-packed/1`` files come back as zero-copy
    :class:`MappedPackedTrace`; binary and text come back as string
    :class:`Trace` (or, with ``prefer_packed``, fused straight into a
    :class:`PackedTrace` — text never materializes events then).
    """
    from .binary import load_binary
    from .parser import load_trace

    kind = sniff_format(source)
    if kind == FORMAT_PACKED:
        return load_packed(source)
    if kind == FORMAT_BINARY:
        trace = load_binary(source)
        if prefer_packed:
            from .packed import pack

            return pack(trace)
        return trace
    if prefer_packed:
        return parse_packed(source)
    return load_trace(source)
