"""Trace transformations driven by atomicity specifications.

:func:`apply_spec` is the analog of the artifact's ``atom_spec.py`` step:
it takes a raw trace whose begin/end markers carry method labels (one pair
per method entry/exit, as logged by RoadRunner) and a specification, and
produces the filtered trace in which only atomic methods' markers survive.
Non-marker events always survive; dropped markers simply dissolve their
block into the surrounding context (enclosing transaction or unary events).
"""

from __future__ import annotations

from typing import Dict, List

from ..spec.atomicity_spec import AtomicitySpec
from .events import Event, Op
from .trace import Trace


def apply_spec(trace: Trace, spec: AtomicitySpec, name: str = "") -> Trace:
    """Filter begin/end markers according to an atomicity specification.

    Marker pairs nest properly per thread (call-stack discipline), so the
    keep/drop decision made at a begin is replayed at the matching end via
    a per-thread stack.

    Args:
        trace: Raw trace with (possibly labeled) begin/end markers.
        spec: The atomicity specification to apply.
        name: Name for the filtered trace (defaults to
            ``"<trace>+<spec>"``).

    Returns:
        A new trace containing all non-marker events and only the marker
        pairs whose method the spec declares atomic.
    """
    filtered = Trace(name=name or f"{trace.name}+{spec.name}")
    keep_stack: Dict[str, List[bool]] = {}
    for event in trace:
        if event.op is Op.BEGIN:
            keep = spec.is_atomic(event.target)
            keep_stack.setdefault(event.thread, []).append(keep)
            if keep:
                filtered.append(Event(event.thread, Op.BEGIN, event.target))
        elif event.op is Op.END:
            stack = keep_stack.get(event.thread)
            if not stack:
                raise ValueError(
                    f"unmatched end at event {event.idx}; validate the "
                    "trace with repro.trace.wellformed first"
                )
            if stack.pop():
                filtered.append(Event(event.thread, Op.END, event.target))
        else:
            filtered.append(Event(event.thread, event.op, event.target))
    return filtered


def strip_markers(trace: Trace, name: str = "") -> Trace:
    """Remove every begin/end marker (the empty specification)."""
    return apply_spec(trace, AtomicitySpec.none(), name=name or f"{trace.name}+none")


def strip_labels(trace: Trace, name: str = "") -> Trace:
    """Drop method labels from markers, keeping the block structure.

    Useful before serializing traces for tools that expect unlabeled
    ``begin``/``end`` lines.
    """
    stripped = Trace(name=name or trace.name)
    for event in trace:
        if event.op is Op.BEGIN or event.op is Op.END:
            stripped.append(Event(event.thread, event.op))
        else:
            stripped.append(Event(event.thread, event.op, event.target))
    return stripped
