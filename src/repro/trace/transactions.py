"""Transaction extraction.

A *transaction* in thread ``t`` is a maximal subsequence of events of ``t``
starting with ``<t, begin>`` and ending with the matching ``<t, end>``
(paper, Section 2). Nested begin/end pairs do not start new transactions —
only the outermost pair counts (Section 4.1.4). Events not enclosed in any
begin/end block form *unary transactions*: trivial atomic blocks containing
exactly that one event (terminology from Velodrome [19]).

This module assigns every event of a trace to its transaction. Analyzers do
this implicitly on the fly; the explicit index built here serves the oracle,
the Velodrome baseline, trace statistics, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .events import Op
from .trace import Trace


@dataclass
class Transaction:
    """A (possibly unary, possibly still active) transaction.

    Attributes:
        tid: Dense transaction identifier (position in the extraction order).
        thread: The thread executing the transaction.
        begin_idx: Trace index of the outermost begin event, or ``None``
            for unary transactions.
        end_idx: Trace index of the matching outermost end event, ``None``
            while the transaction is active (or for unary transactions,
            where the single event both opens and closes it).
        event_indices: Trace indices of all events in the transaction,
            including the begin/end markers and any nested markers.
    """

    tid: int
    thread: str
    begin_idx: Optional[int] = None
    end_idx: Optional[int] = None
    event_indices: List[int] = field(default_factory=list)

    @property
    def is_unary(self) -> bool:
        """True for the trivial one-event transactions of [19]."""
        return self.begin_idx is None

    @property
    def is_completed(self) -> bool:
        """A transaction is completed once its end event has been seen.

        Unary transactions complete immediately (paper, Section 2 defines
        "completed in σ" via the end event; a unary transaction has no
        pending end).
        """
        return self.is_unary or self.end_idx is not None

    @property
    def is_active(self) -> bool:
        return not self.is_completed

    def __len__(self) -> int:
        return len(self.event_indices)


@dataclass
class TransactionIndex:
    """The result of :func:`extract_transactions`.

    Attributes:
        transactions: All transactions in order of first event.
        txn_of: For each event index, the ``tid`` of its transaction.
    """

    transactions: List[Transaction]
    txn_of: List[int]

    def transaction_of(self, event_idx: int) -> Transaction:
        """The transaction containing the event at ``event_idx``."""
        return self.transactions[self.txn_of[event_idx]]

    @property
    def non_unary_count(self) -> int:
        return sum(1 for t in self.transactions if not t.is_unary)

    @property
    def active_count(self) -> int:
        return sum(1 for t in self.transactions if t.is_active)


def extract_transactions(trace: Trace) -> TransactionIndex:
    """Assign every event of ``trace`` to a transaction.

    Nesting is flattened: a begin while a transaction is already open and a
    matching non-outermost end are recorded as ordinary member events of
    the enclosing transaction. Events outside any block each become their
    own unary transaction.
    """
    transactions: List[Transaction] = []
    txn_of: List[int] = []
    depth: Dict[str, int] = {}
    current: Dict[str, int] = {}  # thread -> tid of open transaction

    for event in trace:
        thread = event.thread
        thread_depth = depth.get(thread, 0)
        if event.op is Op.BEGIN:
            if thread_depth == 0:
                tid = len(transactions)
                transactions.append(
                    Transaction(tid=tid, thread=thread, begin_idx=event.idx)
                )
                current[thread] = tid
            else:
                tid = current[thread]
            depth[thread] = thread_depth + 1
            transactions[tid].event_indices.append(event.idx)
            txn_of.append(tid)
        elif event.op is Op.END:
            if thread_depth == 0:
                raise ValueError(
                    f"end without matching begin at event {event.idx}; "
                    "validate the trace with repro.trace.wellformed first"
                )
            depth[thread] = thread_depth - 1
            tid = current[thread]
            transactions[tid].event_indices.append(event.idx)
            txn_of.append(tid)
            if thread_depth == 1:
                transactions[tid].end_idx = event.idx
                del current[thread]
        else:
            if thread_depth > 0:
                tid = current[thread]
            else:
                tid = len(transactions)
                transactions.append(Transaction(tid=tid, thread=thread))
            transactions[tid].event_indices.append(event.idx)
            txn_of.append(tid)

    return TransactionIndex(transactions=transactions, txn_of=txn_of)


def count_transactions(trace: Trace, include_unary: bool = False) -> int:
    """Number of transactions in ``trace``.

    With ``include_unary=False`` this matches Column 6 of the paper's
    tables, which counts begin/end-delimited transactions.
    """
    index = extract_transactions(trace)
    if include_unary:
        return len(index.transactions)
    return index.non_unary_count
