"""Verdict-aware trace transformations.

Building blocks for composing and relabeling traces:

* :func:`rename` — consistent renaming of threads/variables/locks.
  Verdict-preserving by construction (conflicts only compare names for
  equality), which the metamorphic test-suite leans on.
* :func:`concat` — sequential composition. Verdict: the result violates
  iff either part does *plus* whatever new cross-part edges create —
  with ``disjoint_threads=True`` (checked) and disjoint objects the
  verdict is exactly the disjunction, a property tested in
  ``tests/test_transform.py``.
* :func:`interleave` — round-robin merge of traces with disjoint
  threads and objects, for constructing multi-group scenarios out of
  zoo specimens.

All functions return fresh traces; inputs are never mutated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .events import Event, LOCK_OPS, MARKER_OPS, MEMORY_OPS, Op, THREAD_OPS
from .trace import Trace


def rename(
    trace: Trace,
    threads: Optional[Dict[str, str]] = None,
    variables: Optional[Dict[str, str]] = None,
    locks: Optional[Dict[str, str]] = None,
    name: Optional[str] = None,
) -> Trace:
    """Consistently rename identifiers (missing keys stay unchanged).

    Thread renames also apply to fork/join targets; begin/end method
    labels are left alone (they are spec-level, not conflict-level).

    Raises:
        ValueError: If a mapping merges two distinct names — merging
            can change the verdict, renaming must be injective on the
            names that occur.
    """
    threads = threads or {}
    variables = variables or {}
    locks = locks or {}
    for mapping, kind in ((threads, "thread"), (variables, "variable"),
                          (locks, "lock")):
        image = list(mapping.values())
        if len(set(image)) != len(image):
            raise ValueError(f"{kind} renaming is not injective: {mapping}")
        merged = set(image) & (set(_names(trace, kind)) - set(mapping))
        if merged:
            raise ValueError(
                f"{kind} renaming merges into existing names: {sorted(merged)}"
            )

    renamed = Trace(name=name or f"{trace.name}-renamed")
    for event in trace:
        thread = threads.get(event.thread, event.thread)
        target = event.target
        if event.op in MEMORY_OPS:
            target = variables.get(target, target)
        elif event.op in LOCK_OPS:
            target = locks.get(target, target)
        elif event.op in THREAD_OPS:
            target = threads.get(target, target)
        renamed.append(Event(thread, event.op, target))
    return renamed


def _names(trace: Trace, kind: str) -> List[str]:
    ops = {"thread": THREAD_OPS, "variable": MEMORY_OPS, "lock": LOCK_OPS}[kind]
    seen: List[str] = []
    for event in trace:
        candidates = []
        if kind == "thread":
            candidates.append(event.thread)
        if event.op in ops and event.target is not None:
            candidates.append(event.target)
        for candidate in candidates:
            if candidate not in seen:
                seen.append(candidate)
    return seen


def _check_disjoint(parts: Sequence[Trace], kind: str) -> None:
    seen: Dict[str, int] = {}
    for i, part in enumerate(parts):
        for name in _names(part, kind):
            if name in seen and seen[name] != i:
                raise ValueError(
                    f"traces share {kind} {name!r} (parts {seen[name]} and {i})"
                )
            seen[name] = i


def concat(
    parts: Sequence[Trace],
    disjoint_threads: bool = True,
    name: Optional[str] = None,
) -> Trace:
    """Sequential composition of traces.

    With ``disjoint_threads=True`` (default) the parts must not share
    thread names — then each part's transactions stay intact and, when
    objects are also disjoint, the verdict is the OR of the parts'
    verdicts. With ``False`` the caller takes responsibility for
    well-formedness across the seam (e.g. a begin left open in part 1
    swallowing part 2's events).
    """
    if disjoint_threads:
        _check_disjoint(parts, "thread")
    result = Trace(name=name or "+".join(p.name for p in parts))
    for part in parts:
        for event in part:
            result.append(Event(event.thread, event.op, event.target))
    return result


def interleave(
    parts: Sequence[Trace],
    chunk: int = 1,
    name: Optional[str] = None,
) -> Trace:
    """Round-robin merge of traces with disjoint threads.

    Takes ``chunk`` events from each part in turn until all are
    exhausted. Because the parts share no threads (checked) each part's
    internal order — hence its conflict order — is preserved, so the
    merge violates iff some part does *or* the parts share objects that
    now conflict across groups.
    """
    if chunk < 1:
        raise ValueError("chunk must be positive")
    _check_disjoint(parts, "thread")
    cursors = [0] * len(parts)
    result = Trace(name=name or "|".join(p.name for p in parts))
    remaining = sum(len(p) for p in parts)
    while remaining:
        for i, part in enumerate(parts):
            take = min(chunk, len(part) - cursors[i])
            for k in range(take):
                event = part[cursors[i] + k]
                result.append(Event(event.thread, event.op, event.target))
            cursors[i] += take
            remaining -= take
    return result


def relabel_disjoint(
    traces: Iterable[Trace], prefix: str = "g"
) -> List[Trace]:
    """Rename every identifier of each trace into its own namespace.

    Utility for composing copies of the *same* specimen: thread ``t1``
    of the third trace becomes ``g2.t1``, and likewise for variables
    and locks, so :func:`concat` / :func:`interleave` accept them.
    """
    result: List[Trace] = []
    for i, trace in enumerate(traces):
        group = f"{prefix}{i}"
        result.append(
            rename(
                trace,
                threads={t: f"{group}.{t}" for t in _names(trace, "thread")},
                variables={
                    v: f"{group}.{v}" for v in _names(trace, "variable")
                },
                locks={l: f"{group}.{l}" for l in _names(trace, "lock")},
                name=f"{group}.{trace.name}",
            )
        )
    return result
