"""Compact binary trace format.

The paper's trace logs reach billions of events and ~100 GB as text
(Appendix D); RAPID ships binary formats for the same reason. Ours is a
simple interned, fixed-width encoding:

* magic ``b"REPROTR1"``;
* the trace name (u16 length + UTF-8);
* a thread string table (u32 count, then u16 length + UTF-8 each);
* a target string table (same layout);
* the events (u32 count, then per event: u8 op, u32 thread index,
  u32 target index with ``0xFFFFFFFF`` for "no target").

At 9 bytes/event plus the tables this is typically 3-4x smaller than
``.std`` text and parses without regexes. Round-trips exactly with the
in-memory representation.

This format still decodes into per-event :class:`Event` objects. For
the analyze-many-times workflow, prefer the ``repro-packed/1`` column
store (:mod:`repro.trace.packed_io`), which ``mmap``-loads with O(1)
per-event work; :func:`repro.trace.packed_io.load_any` sniffs the
magic bytes of either format (or text) and dispatches.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from .events import Event, Op
from .trace import Trace

MAGIC = b"REPROTR1"
_NO_TARGET = 0xFFFFFFFF


class BinaryTraceError(ValueError):
    """The input is not a valid binary trace."""


def _write_string(stream: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise BinaryTraceError(f"string too long for format: {text[:40]!r}...")
    stream.write(struct.pack("<H", len(data)))
    stream.write(data)


def _read_string(stream: BinaryIO) -> str:
    (length,) = struct.unpack("<H", _read_exact(stream, 2))
    data = _read_exact(stream, length)
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise BinaryTraceError(f"corrupt string table entry: {error}") from error


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise BinaryTraceError("truncated binary trace")
    return data


def write_binary(trace: Trace, stream: BinaryIO) -> None:
    """Serialize ``trace`` to an open binary stream."""
    threads: Dict[str, int] = {}
    targets: Dict[str, int] = {}
    for event in trace:
        threads.setdefault(event.thread, len(threads))
        if event.target is not None:
            targets.setdefault(event.target, len(targets))

    stream.write(MAGIC)
    _write_string(stream, trace.name)
    stream.write(struct.pack("<I", len(threads)))
    for name in threads:  # dicts preserve insertion order
        _write_string(stream, name)
    stream.write(struct.pack("<I", len(targets)))
    for name in targets:
        _write_string(stream, name)
    stream.write(struct.pack("<I", len(trace)))
    pack = struct.pack
    for event in trace:
        target_idx = (
            _NO_TARGET if event.target is None else targets[event.target]
        )
        stream.write(pack("<BII", event.op, threads[event.thread], target_idx))


def read_binary(stream: BinaryIO) -> Trace:
    """Parse a trace from an open binary stream."""
    if _read_exact(stream, len(MAGIC)) != MAGIC:
        raise BinaryTraceError("bad magic: not a repro binary trace")
    name = _read_string(stream)
    (n_threads,) = struct.unpack("<I", _read_exact(stream, 4))
    threads: List[str] = [_read_string(stream) for _ in range(n_threads)]
    (n_targets,) = struct.unpack("<I", _read_exact(stream, 4))
    targets: List[str] = [_read_string(stream) for _ in range(n_targets)]
    (n_events,) = struct.unpack("<I", _read_exact(stream, 4))
    trace = Trace(name=name)
    unpack = struct.unpack
    for _ in range(n_events):
        op_code, thread_idx, target_idx = unpack("<BII", _read_exact(stream, 9))
        try:
            op = Op(op_code)
            thread = threads[thread_idx]
            target = None if target_idx == _NO_TARGET else targets[target_idx]
            # Event() validates op/target consistency and raises
            # ValueError for e.g. a read whose target index was
            # corrupted into the no-target sentinel — that is a corrupt
            # record too, not a programming error.
            event = Event(thread, op, target)
        except (ValueError, IndexError) as error:
            raise BinaryTraceError(f"corrupt event record: {error}") from error
        trace.append(event)
    return trace


def save_binary(trace: Trace, destination: Union[str, Path]) -> None:
    """Write a trace to a ``.rtb`` file."""
    with Path(destination).open("wb") as stream:
        write_binary(trace, stream)


def load_binary(source: Union[str, Path]) -> Trace:
    """Read a trace from a ``.rtb`` file."""
    with Path(source).open("rb") as stream:
        return read_binary(stream)
