"""Packed traces: one-pass compilation of a trace to dense integer records.

The string event model (:mod:`repro.trace.events`) is what the paper's
traces look like and what the parsers, writers and tests speak. It is
also what every checker used to *re*-intern, event by event, through
per-checker dictionaries — a large constant factor on the hot path for
an analysis whose selling point is linearity.

A :class:`PackedTrace` pays the interning cost exactly once. Compiling a
:class:`~repro.trace.trace.Trace` produces three parallel machine-word
arrays —

* ``thread`` — dense thread index (shared namespace with fork/join
  targets),
* ``op`` — the :class:`~repro.trace.events.Op` code,
* ``target`` — a dense index in the *per-op namespace*: variables for
  read/write, locks for acquire/release, threads for fork/join, block
  labels for begin/end (``-1`` when absent)

— plus one :class:`Interner` per namespace mapping the indices back to
names. Checkers consume the arrays directly via their per-op dispatch
tables (``StreamingChecker.run_packed``); everything else can keep
treating a packed trace as an iterable of events, because iteration and
indexing reconstruct :class:`~repro.trace.events.Event` objects on
demand.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from .events import Event, Op
from .trace import Trace

#: Sentinel target index for begin/end events without a label.
NO_TARGET = -1

#: Which interner namespace each op's target lives in.
_NS_VARIABLE = 0
_NS_LOCK = 1
_NS_THREAD = 2
_NS_LABEL = 3

_NAMESPACE_OF_OP = (
    _NS_VARIABLE,  # READ
    _NS_VARIABLE,  # WRITE
    _NS_LOCK,      # ACQUIRE
    _NS_LOCK,      # RELEASE
    _NS_THREAD,    # FORK
    _NS_THREAD,    # JOIN
    _NS_LABEL,     # BEGIN
    _NS_LABEL,     # END
)


class Interner:
    """Interns strings of one namespace to dense indices.

    The generalization of :class:`~repro.core.vector_clock.ThreadRegistry`
    to arbitrary namespaces (variables, locks, block labels).
    """

    __slots__ = ("_index", "_names")

    def __init__(self, names: Sequence[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.index_of(name)

    def index_of(self, name: str) -> int:
        """The index for ``name``, interning it on first sight."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
        return idx

    def lookup(self, name: str) -> Optional[int]:
        """The index for ``name`` without interning (None if unseen)."""
        return self._index.get(name)

    def name_of(self, index: int) -> str:
        return self._names[index]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> List[str]:
        """The interned names, in index order (a copy)."""
        return self._names[:]

    def names_from(self, start: int) -> List[str]:
        """The names interned at index ``start`` onward (a copy).

        The delta a streaming encoder ships per frame
        (:class:`repro.service.protocol.DeltaEncoder`): O(new names),
        not O(table) like ``names()[start:]``.
        """
        return self._names[start:]


class PackedTrace:
    """A trace compiled to dense integer event records.

    Build one with :func:`pack` / :meth:`from_trace` (single pass over
    the source trace). Event ``i`` is the triple
    ``(thread[i], op[i], target[i])``; ``idx`` is implicit in the
    position, so a packed trace costs ~9 bytes of array payload per
    event instead of one :class:`Event` object.

    Iteration, ``trace[i]`` and slicing reconstruct events on demand, so
    a packed trace can stand in for a :class:`Trace` anywhere events are
    only read. Checkers detect packed input and switch to their
    dispatch-table fast path instead (no Event materialization at all).
    """

    __slots__ = ("name", "threads", "variables", "locks", "labels",
                 "_thread", "_op", "_target")

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.threads = Interner()
        self.variables = Interner()
        self.locks = Interner()
        self.labels = Interner()
        self._thread = array("i")
        self._op = array("b")
        self._target = array("i")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trace(
        cls, trace: Iterable[Event], name: Optional[str] = None
    ) -> "PackedTrace":
        """Compile ``trace`` (any event iterable) in one pass."""
        packed = cls(name=name or getattr(trace, "name", "trace"))
        thread_of = packed.threads.index_of
        interner_of_ns = (
            packed.variables.index_of,
            packed.locks.index_of,
            thread_of,
            packed.labels.index_of,
        )
        threads_arr = packed._thread
        ops_arr = packed._op
        targets_arr = packed._target
        for event in trace:
            op = event.op
            target = event.target
            threads_arr.append(thread_of(event.thread))
            ops_arr.append(op)
            targets_arr.append(
                NO_TARGET if target is None
                else interner_of_ns[_NAMESPACE_OF_OP[op]](target)
            )
        return packed

    def append(self, event: Event) -> None:
        """Append one event (interning names as needed)."""
        op = event.op
        target = event.target
        self._thread.append(self.threads.index_of(event.thread))
        self._op.append(op)
        if target is None:
            self._target.append(NO_TARGET)
        else:
            ns = _NAMESPACE_OF_OP[op]
            interner = (self.variables, self.locks, self.threads, self.labels)[ns]
            self._target.append(interner.index_of(target))

    def extend_from(self, other: "PackedTrace") -> None:
        """Append every event of ``other`` (a streaming-store append).

        When ``other`` shares this trace's interner tables (a slice of
        the same source, or a peer built against them) the integer
        records are copied verbatim — no hashing, no ``Event``
        objects. Otherwise each record is remapped name-by-name through
        this trace's interners (one table build per namespace, then
        O(1) per event). This is how an incremental
        :meth:`repro.api.session.Session.feed` grows its packed store
        from arbitrary packed batches.
        """
        o_threads, o_ops, o_targets = other.arrays()
        if (
            other.threads is self.threads
            and other.variables is self.variables
            and other.locks is self.locks
            and other.labels is self.labels
        ):
            self._thread.extend(o_threads)
            self._op.extend(o_ops)
            self._target.extend(o_targets)
            return
        t_map = [self.threads.index_of(n) for n in other.threads._names]
        ns_map = (
            [self.variables.index_of(n) for n in other.variables._names],
            [self.locks.index_of(n) for n in other.locks._names],
            t_map,
            [self.labels.index_of(n) for n in other.labels._names],
        )
        for i in range(len(other)):
            op = o_ops[i]
            target = o_targets[i]
            self._thread.append(t_map[o_threads[i]])
            self._op.append(op)
            self._target.append(
                NO_TARGET if target == NO_TARGET
                else ns_map[_NAMESPACE_OF_OP[op]][target]
            )

    # -- raw access --------------------------------------------------------

    def arrays(self) -> tuple:
        """The ``(thread, op, target)`` arrays — the checker fast path."""
        return self._thread, self._op, self._target

    @property
    def thread_names(self) -> List[str]:
        return self.threads._names

    @property
    def variable_names(self) -> List[str]:
        return self.variables._names

    @property
    def lock_names(self) -> List[str]:
        return self.locks._names

    def target_name(self, i: int) -> Optional[str]:
        """The target of event ``i`` as a string (None for bare markers)."""
        target = self._target[i]
        if target == NO_TARGET:
            return None
        ns = _NAMESPACE_OF_OP[self._op[i]]
        interner = (self.variables, self.locks, self.threads, self.labels)[ns]
        return interner.name_of(target)

    def nbytes(self) -> int:
        """Payload size of the event arrays in bytes."""
        return (
            self._thread.itemsize * len(self._thread)
            + self._op.itemsize * len(self._op)
            + self._target.itemsize * len(self._target)
        )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._op)

    def event_at(self, i: int) -> Event:
        """Reconstruct event ``i`` (a fresh :class:`Event`, idx stamped)."""
        op = Op(self._op[i])
        return Event(
            self.threads.name_of(self._thread[i]),
            op,
            self.target_name(i),
            idx=i,
        )

    def __iter__(self) -> Iterator[Event]:
        thread_name = self.threads.name_of
        target_name = self.target_name
        for i, code in enumerate(self._op):
            yield Event(
                thread_name(self._thread[i]), Op(code), target_name(i), idx=i
            )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Event, "PackedTrace"]:
        if isinstance(index, slice):
            sliced = PackedTrace(name=f"{self.name}[{index.start}:{index.stop}]")
            # Interners are shared: indices in the slice stay valid and
            # nothing is re-hashed. Slices are read-mostly; appending to
            # a slice interns into the shared namespaces, which is
            # harmless (indices only grow).
            sliced.threads = self.threads
            sliced.variables = self.variables
            sliced.locks = self.locks
            sliced.labels = self.labels
            sliced._thread = self._thread[index]
            sliced._op = self._op[index]
            sliced._target = self._target[index]
            return sliced
        return self.event_at(index)

    def __repr__(self) -> str:
        return f"PackedTrace({self.name!r}, {len(self)} events)"

    # -- conversion and entity accessors -----------------------------------

    def to_trace(self) -> Trace:
        """Materialize back into a string-event :class:`Trace`."""
        return Trace(iter(self), name=self.name)

    def counts_by_op(self) -> Dict[Op, int]:
        """Histogram of event counts per operation kind."""
        histogram = {op: 0 for op in Op}
        for code in self._op:
            histogram[Op(code)] += 1
        return histogram

    def thread_set(self) -> Set[str]:
        """All thread names (including fork/join targets)."""
        return set(self.threads._names)

    def variable_set(self) -> Set[str]:
        return set(self.variables._names)

    def lock_set(self) -> Set[str]:
        return set(self.locks._names)


def pack(trace: Iterable[Event], name: Optional[str] = None) -> PackedTrace:
    """Compile a trace (or any event iterable) into a :class:`PackedTrace`."""
    if isinstance(trace, PackedTrace):
        return trace
    return PackedTrace.from_trace(trace, name=name)
