"""Parser for the ``.std`` trace format.

The format mirrors the RAPID tool's standard format used by the paper's
artifact: one event per line, ``thread|operation``, where the operation is
a mnemonic with an optional parenthesised target::

    # comments start with '#'
    t1|begin
    t1|w(x)
    t2|acq(l)
    t2|r(x)
    t2|rel(l)
    t1|fork(t3)
    t1|end

Whitespace around tokens is ignored. Blank lines and comment lines are
skipped. The writer (:mod:`repro.trace.writer`) emits exactly this format,
and parsing round-trips with it.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from .events import Event, MNEMONIC_OP, Op
from .trace import Trace


class TraceParseError(ValueError):
    """A line of trace text could not be parsed.

    Attributes:
        line_number: 1-based line number of the offending line.
        line: The raw line text.
    """

    def __init__(self, reason: str, line_number: int, line: str) -> None:
        self.line_number = line_number
        self.line = line
        super().__init__(f"line {line_number}: {reason}: {line!r}")


_LINE_RE = re.compile(
    r"""
    ^
    (?P<thread>[^|]+)
    \| \s*
    (?P<mnemonic>[A-Za-z]+)
    \s*
    (?: \( (?P<target>[^()]*) \) )?
    \s* $
    """,
    re.VERBOSE,
)


def parse_fields(line: str, line_number: int = 0):
    """Tokenize one ``thread|op(target)`` line to ``(thread, op, target)``.

    The validation core of :func:`parse_line`, shared with the fused
    text→packed parser (:func:`repro.trace.packed_io.parse_packed`)
    which interns the fields directly without building an
    :class:`Event`. Raises :class:`TraceParseError` exactly where
    :func:`parse_line` would.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TraceParseError("malformed event line", line_number, line)
    thread = match.group("thread").strip()
    mnemonic = match.group("mnemonic").strip().lower()
    target = match.group("target")
    if target is not None:
        target = target.strip()
        if not target:
            raise TraceParseError("empty target", line_number, line)
    if not thread:
        raise TraceParseError("empty thread identifier", line_number, line)
    op = MNEMONIC_OP.get(mnemonic)
    if op is None:
        raise TraceParseError(f"unknown operation {mnemonic!r}", line_number, line)
    if op not in (Op.BEGIN, Op.END) and target is None:
        # begin/end take an optional method label: "t|begin" or "t|begin(m)".
        raise TraceParseError(f"{mnemonic} requires a target", line_number, line)
    return thread, op, target


def parse_line(line: str, line_number: int = 0) -> Event:
    """Parse a single ``thread|op(target)`` line into an :class:`Event`."""
    thread, op, target = parse_fields(line, line_number)
    return Event(thread, op, target)


def iter_events(lines: Iterable[str]) -> Iterator[Event]:
    """Lazily parse events from an iterable of lines.

    Suitable for streaming analysis of large trace files: feed the events
    directly into a checker without materialising a :class:`Trace`.
    """
    for line_number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_line(stripped, line_number)


def parse_trace(text: str, name: str = "trace") -> Trace:
    """Parse a complete trace from a string."""
    return Trace(iter_events(io.StringIO(text)), name=name)


def load_trace(source: Union[str, Path, TextIO], name: str = "") -> Trace:
    """Load a trace from a file path or an open text stream."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="utf-8") as handle:
            try:
                return Trace(iter_events(handle), name=name or path.stem)
            except UnicodeDecodeError as error:
                raise TraceParseError(
                    f"not UTF-8 trace text ({error})", 0, "<binary data>"
                ) from error
    return Trace(iter_events(source), name=name or "trace")
