"""Well-formedness validation of traces.

The paper (Section 2) assumes traces are *well-formed*:

* all lock acquires and releases are well matched, and a lock is not
  acquired by more than one thread at a time;
* all begin and end events are well matched (nesting is allowed — only the
  outermost pair constitutes a transaction);
* fork events occur before the first event of the child thread, and join
  events occur after the last event of the child thread.

:func:`validate` checks these assumptions and raises
:class:`WellFormednessError` on the first violation. Analyzers in
:mod:`repro.core` and :mod:`repro.baselines` assume well-formed input; run
the validator on untrusted traces first (the CLI does this by default).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .events import Event, Op
from .trace import Trace


class WellFormednessError(ValueError):
    """A trace violates the paper's well-formedness assumptions.

    Attributes:
        event: The offending event (``None`` for end-of-trace problems).
        reason: Human-readable description of the violation.
    """

    def __init__(self, reason: str, event: Optional[Event] = None) -> None:
        self.event = event
        self.reason = reason
        location = f" at event {event.idx} ({event})" if event is not None else ""
        super().__init__(f"{reason}{location}")


def validate(
    trace: Trace,
    *,
    allow_open_transactions: bool = True,
    allow_held_locks: bool = True,
    require_forked_threads: bool = False,
) -> None:
    """Validate the well-formedness of ``trace``.

    Args:
        trace: The trace to validate.
        allow_open_transactions: If ``False``, every begin must have a
            matching end by the end of the trace. Prefixes of well-formed
            traces legitimately leave transactions open, so the default
            is permissive.
        allow_held_locks: If ``False``, every acquire must have a matching
            release by the end of the trace.
        require_forked_threads: If ``True``, every thread other than the
            first thread observed must be the target of a fork before its
            first event. Traces logged from already-running thread pools
            do not satisfy this, so the default is permissive.

    Raises:
        WellFormednessError: On the first violated assumption.
    """
    lock_holder: Dict[str, str] = {}
    lock_depth: Dict[str, int] = {}
    txn_depth: Dict[str, int] = {}
    started: Set[str] = set()
    forked: Set[str] = set()
    joined: Set[str] = set()
    first_thread: Optional[str] = None

    for event in trace:
        thread = event.thread
        if thread in joined:
            raise WellFormednessError(
                f"thread {thread} performs an event after being joined", event
            )
        if event.op is Op.JOIN and event.target in joined:
            raise WellFormednessError(
                f"thread {event.target} joined more than once", event
            )
        if first_thread is None:
            first_thread = thread
        if require_forked_threads and thread not in started:
            if thread != first_thread and thread not in forked:
                raise WellFormednessError(
                    f"thread {thread} performs an event before being forked", event
                )
        started.add(thread)

        if event.op is Op.ACQUIRE:
            lock = event.target
            assert lock is not None
            holder = lock_holder.get(lock)
            if holder is not None and holder != thread:
                raise WellFormednessError(
                    f"lock {lock} acquired by {thread} while held by {holder}",
                    event,
                )
            lock_holder[lock] = thread
            lock_depth[lock] = lock_depth.get(lock, 0) + 1
        elif event.op is Op.RELEASE:
            lock = event.target
            assert lock is not None
            holder = lock_holder.get(lock)
            if holder != thread:
                raise WellFormednessError(
                    f"lock {lock} released by {thread} but held by {holder}",
                    event,
                )
            lock_depth[lock] -= 1
            if lock_depth[lock] == 0:
                del lock_holder[lock]
        elif event.op is Op.BEGIN:
            txn_depth[thread] = txn_depth.get(thread, 0) + 1
        elif event.op is Op.END:
            depth = txn_depth.get(thread, 0)
            if depth == 0:
                raise WellFormednessError(
                    f"end event in thread {thread} without matching begin", event
                )
            txn_depth[thread] = depth - 1
        elif event.op is Op.FORK:
            child = event.target
            assert child is not None
            if child == thread:
                raise WellFormednessError(f"thread {thread} forks itself", event)
            if child in started:
                raise WellFormednessError(
                    f"fork of thread {child} after its first event", event
                )
            if child in forked:
                raise WellFormednessError(f"thread {child} forked twice", event)
            forked.add(child)
        elif event.op is Op.JOIN:
            child = event.target
            assert child is not None
            if child == thread:
                raise WellFormednessError(f"thread {thread} joins itself", event)
            joined.add(child)

    if not allow_open_transactions:
        for thread, depth in txn_depth.items():
            if depth != 0:
                raise WellFormednessError(
                    f"thread {thread} ends the trace with {depth} open "
                    f"transaction(s)"
                )
    if not allow_held_locks:
        for lock, holder in lock_holder.items():
            raise WellFormednessError(
                f"lock {lock} still held by {holder} at end of trace"
            )


def is_well_formed(trace: Trace, **kwargs: bool) -> bool:
    """Boolean wrapper around :func:`validate`."""
    try:
        validate(trace, **kwargs)
    except WellFormednessError:
        return False
    return True
