"""Trace substrate: event model, containers, IO, validation, statistics."""

from .binary import BinaryTraceError, load_binary, save_binary
from .events import (
    Event,
    Op,
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    write,
)
from .filters import apply_spec, strip_labels, strip_markers
from .metainfo import MetaInfo, collect_metainfo, metainfo
from .packed import Interner, PackedTrace, pack
from .packed_io import (
    MappedPackedTrace,
    PackedTraceError,
    load_any,
    load_packed,
    parse_packed,
    parse_packed_text,
    save_packed,
    sniff_format,
)
from .parser import TraceParseError, iter_events, load_trace, parse_trace
from .slicing import project_threads, project_variables, window
from .trace import Trace, trace_of
from .transform import concat, interleave, relabel_disjoint, rename
from .transactions import (
    Transaction,
    TransactionIndex,
    count_transactions,
    extract_transactions,
)
from .wellformed import WellFormednessError, is_well_formed, validate
from .writer import dump_trace, save_trace

__all__ = [
    "Event",
    "Op",
    "Trace",
    "trace_of",
    "read",
    "write",
    "acquire",
    "release",
    "fork",
    "join",
    "begin",
    "end",
    "PackedTrace",
    "pack",
    "Interner",
    "MappedPackedTrace",
    "PackedTraceError",
    "save_packed",
    "load_packed",
    "parse_packed",
    "parse_packed_text",
    "load_any",
    "sniff_format",
    "parse_trace",
    "load_trace",
    "iter_events",
    "TraceParseError",
    "dump_trace",
    "save_trace",
    "save_binary",
    "load_binary",
    "BinaryTraceError",
    "validate",
    "is_well_formed",
    "WellFormednessError",
    "MetaInfo",
    "metainfo",
    "collect_metainfo",
    "Transaction",
    "TransactionIndex",
    "extract_transactions",
    "count_transactions",
    "apply_spec",
    "strip_markers",
    "strip_labels",
    "project_threads",
    "project_variables",
    "window",
    "rename",
    "concat",
    "interleave",
    "relabel_disjoint",
]
