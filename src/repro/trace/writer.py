"""Serializer for the ``.std`` trace format (inverse of the parser)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from .events import Event
from .trace import Trace


def format_event(event: Event) -> str:
    """Render a single event as a ``thread|op(target)`` line."""
    return str(event)


def iter_lines(events: Iterable[Event], header: str = "") -> Iterator[str]:
    """Yield the ``.std`` lines for ``events`` (header emitted as comments)."""
    if header:
        for header_line in header.splitlines():
            yield f"# {header_line}"
    for event in events:
        yield format_event(event)


def dump_trace(trace: Trace, include_header: bool = True) -> str:
    """Serialize a trace to ``.std`` text."""
    header = f"{trace.name}: {len(trace)} events" if include_header else ""
    return "\n".join(iter_lines(trace, header=header)) + "\n"


def save_trace(
    trace: Trace,
    destination: Union[str, Path, TextIO],
    include_header: bool = True,
) -> None:
    """Write a trace to a file path or an open text stream."""
    text = dump_trace(trace, include_header=include_header)
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text, encoding="utf-8")
    else:
        destination.write(text)
