"""Trace slicing: project traces onto threads, variables, or windows.

Debugging a violation in a hundred-thousand-event trace needs smaller
views. Slices preserve the properties the checkers rely on:

* :func:`project_threads` keeps a thread subset. Lock and transaction
  discipline is per-thread, so the result is well-formed; fork/join
  events whose peer is outside the subset are kept (they only order
  the retained thread) unless ``drop_dangling`` is set.
* :func:`project_variables` keeps memory accesses on selected
  variables plus all synchronization and marker events.
* :func:`window` cuts an event range and *repairs* the boundary: opens
  with synthetic begins for transactions already active and closes
  trailing acquires/begins, so validators and checkers accept it.

Slicing is sound for *confirming* a violation (any cycle among the
retained threads/variables survives) but not complete — a cycle can
pass through dropped events, so a serializable slice does not prove
the full trace serializable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .events import Event, Op
from .trace import Trace


def project_threads(
    trace: Trace,
    threads: Iterable[str],
    drop_dangling: bool = False,
    name: str = "",
) -> Trace:
    """Keep only events performed by ``threads``.

    Args:
        trace: The source trace.
        threads: Thread names to retain.
        drop_dangling: Also drop fork/join events whose *target* thread
            is outside the kept set (they are harmless but noisy).
        name: Name for the projected trace.
    """
    kept = set(threads)
    projected = Trace(name=name or f"{trace.name}|threads")
    for event in trace:
        if event.thread not in kept:
            continue
        if (
            drop_dangling
            and (event.op is Op.FORK or event.op is Op.JOIN)
            and event.target not in kept
        ):
            continue
        projected.append(Event(event.thread, event.op, event.target))
    return projected


def project_variables(
    trace: Trace, variables: Iterable[str], name: str = ""
) -> Trace:
    """Keep accesses to ``variables`` plus all non-access events."""
    kept = set(variables)
    projected = Trace(name=name or f"{trace.name}|vars")
    for event in trace:
        if event.is_memory_access and event.target not in kept:
            continue
        projected.append(Event(event.thread, event.op, event.target))
    return projected


def window(trace: Trace, start: int, stop: int, name: str = "") -> Trace:
    """Cut ``trace[start:stop]`` and repair block/lock boundaries.

    Transactions and lock regions that are open when the window begins
    get synthetic begin/acquire events up front (in original nesting
    order); transactions and locks still open when the window ends get
    synthetic end/release events appended. The result is well-formed
    and each surviving conflict keeps its relative order.
    """
    if start < 0 or stop > len(trace) or start > stop:
        raise ValueError(f"bad window [{start}:{stop}) for {len(trace)} events")

    sliced = Trace(name=name or f"{trace.name}[{start}:{stop})")

    # Replay the prefix to learn what is open at the window start.
    open_blocks: Dict[str, List[Event]] = {}
    held_locks: Dict[str, List[Event]] = {}
    for event in trace.events[:start]:
        if event.op is Op.BEGIN:
            open_blocks.setdefault(event.thread, []).append(event)
        elif event.op is Op.END:
            open_blocks.get(event.thread, [None]).pop()
        elif event.op is Op.ACQUIRE:
            held_locks.setdefault(event.thread, []).append(event)
        elif event.op is Op.RELEASE:
            held_locks.get(event.thread, [None]).pop()

    for thread in sorted(set(open_blocks) | set(held_locks)):
        for marker in open_blocks.get(thread, []):
            sliced.append(Event(thread, Op.BEGIN, marker.target))
        for acq in held_locks.get(thread, []):
            sliced.append(Event(thread, Op.ACQUIRE, acq.target))

    depth: Dict[str, int] = {t: len(b) for t, b in open_blocks.items()}
    held: Dict[str, List[str]] = {
        t: [e.target for e in acquired]  # type: ignore[misc]
        for t, acquired in held_locks.items()
    }
    for event in trace.events[start:stop]:
        if event.op is Op.FORK or event.op is Op.JOIN:
            # Fork/join edges across the cut are unsound to replay (the
            # peer's ordering events may lie outside the window).
            continue
        sliced.append(Event(event.thread, event.op, event.target))
        if event.op is Op.BEGIN:
            depth[event.thread] = depth.get(event.thread, 0) + 1
        elif event.op is Op.END:
            depth[event.thread] = depth.get(event.thread, 0) - 1
        elif event.op is Op.ACQUIRE:
            held.setdefault(event.thread, []).append(event.target)  # type: ignore[arg-type]
        elif event.op is Op.RELEASE:
            held.get(event.thread, [None]).pop()

    for thread in sorted(set(depth) | set(held)):
        for lock in reversed(held.get(thread, [])):
            sliced.append(Event(thread, Op.RELEASE, lock))
        for _ in range(depth.get(thread, 0)):
            sliced.append(Event(thread, Op.END))
    return sliced
