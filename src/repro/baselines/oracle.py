"""Exact conflict-serializability oracle (Definition 1).

Ground truth for tests and for cross-checking the streaming checkers:
compute ≤CHB timestamps for every event, lift them to the ⋖Txn relation
on transactions (``T ⋖Txn T'`` iff some ``e ∈ T``, ``e' ∈ T'`` with
``e ≤CHB e'``), and search the resulting transaction graph for a cycle.

This is deliberately the quadratic-pairs construction — simple enough to
be obviously correct, which is the point of an oracle. Use it on traces
up to a few thousand events.

Note on Theorem 3: AeroDrome reports a violation iff there is a witness
cycle with **at most one incomplete** transaction. On traces whose
transactions all complete (every generator in :mod:`repro.sim` closes
its blocks) this coincides with plain Definition 1, which is what
:func:`conflict_serializable` decides. :func:`violation_witness` returns
one offending transaction cycle for diagnostics.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.chb import compute_chb
from ..trace.trace import Trace
from ..trace.transactions import Transaction, extract_transactions
from .graph import Digraph


def transaction_graph(trace: Trace) -> Digraph:
    """The full ⋖Txn graph of ``trace`` (nodes are transaction ids)."""
    chb = compute_chb(trace)
    txns = extract_transactions(trace)
    graph: Digraph[int] = Digraph()
    for txn in txns.transactions:
        graph.add_node(txn.tid)
    n = len(trace)
    txn_of = txns.txn_of
    for i in range(n):
        tid_i = txn_of[i]
        for j in range(i + 1, n):
            tid_j = txn_of[j]
            if tid_i != tid_j and chb.ordered(i, j):
                graph.add_edge(tid_i, tid_j)
    return graph


def conflict_serializable(trace: Trace) -> bool:
    """Whether ``trace`` is conflict serializable (Definition 1)."""
    return not transaction_graph(trace).has_cycle()


def violation_witness(trace: Trace) -> Optional[List[Transaction]]:
    """One cycle of transactions witnessing non-serializability, if any."""
    graph = transaction_graph(trace)
    cycle = graph.find_cycle()
    if not cycle:
        return None
    txns = extract_transactions(trace)
    return [txns.transactions[tid] for tid in cycle]


def first_violating_prefix(trace: Trace) -> Optional[int]:
    """Length of the shortest non-serializable prefix, or ``None``.

    Non-serializability is monotone in the prefix length — ≤CHB and ⋖Txn
    only grow as events are appended, so a cycle in a prefix persists in
    every extension — which makes binary search over prefix lengths valid.
    """
    if conflict_serializable(trace):
        return None
    low, high = 1, len(trace)
    while low < high:
        mid = (low + high) // 2
        if conflict_serializable(trace.prefix(mid)):
            low = mid + 1
        else:
            high = mid
    return low
