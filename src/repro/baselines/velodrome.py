"""Velodrome — the graph-based baseline of Flanagan, Freund and Yi [19].

Velodrome maintains a *transaction graph*: one node per transaction
(including the unary transactions formed by events outside atomic
blocks), and an edge ``T -> T'`` whenever some event of ``T`` must happen
before some event of ``T'`` (the ⋖Txn relation). Each new edge triggers a
reachability query — a cycle means the trace is not conflict serializable.
With up to quadratically many edges and a linear-time query per edge, the
worst case is cubic in the trace length, which is exactly the behaviour
the paper's Table 1 exposes.

Edges come from the conflict rules of Section 2:

* program order — consecutive transactions of the same thread;
* fork: the forking transaction precedes the child's first transaction;
* join: the child's last transaction precedes the joining transaction;
* variable conflicts: last-writer -> reader/writer, last-readers -> writer;
* lock conflicts: last-releaser -> acquirer.

The **garbage collection** optimization (paper, Section 5.1) deletes
completed transactions with no incoming edges: once complete, a
transaction can gain no new incoming edge, so in-degree zero means it can
never lie on a cycle. Deletion cascades, which is what keeps the graph
tiny on Table 2 workloads (4–21 nodes). Edges *out of* collected
transactions are never materialised — they cannot contribute to a cycle.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterator, Optional

from ..core.checker import StreamingChecker
from ..core.violations import Violation
from ..trace.events import Event, Op
from .graph import Digraph


class TxnNode:
    """A transaction-graph node."""

    __slots__ = ("tid", "thread", "completed", "collected")

    def __init__(self, tid: int, thread: str) -> None:
        self.tid = tid
        self.thread = thread
        self.completed = False
        self.collected = False

    def __repr__(self) -> str:
        state = "done" if self.completed else "open"
        return f"Txn#{self.tid}({self.thread},{state})"


class VelodromeChecker(StreamingChecker):
    """Streaming transaction-graph checker (cubic worst case).

    Args:
        garbage_collect: Enable the completed/no-incoming-edge node
            deletion optimization. The paper's Velodrome implementation
            has it on; ``velodrome-nogc`` exposes the unoptimized variant
            for ablation.
        incremental_topology: Replace the per-edge DFS cycle check with
            the Pearce–Kelly online topological order
            (:class:`~repro.baselines.online_cycles.IncrementalTopoDigraph`).
            Same verdict, much better amortized bound — the strongest
            graph-based opponent we can field against AeroDrome
            (``velodrome-pk`` in the registry).
    """

    def __init__(
        self,
        garbage_collect: bool = True,
        incremental_topology: bool = False,
    ) -> None:
        super().__init__()
        self.garbage_collect = garbage_collect
        self.incremental_topology = incremental_topology
        if incremental_topology:
            from .online_cycles import IncrementalTopoDigraph

            self.algorithm = "velodrome-pk"
            self.graph = IncrementalTopoDigraph()
        else:
            self.algorithm = "velodrome" if garbage_collect else "velodrome-nogc"
            self.graph = Digraph()
        self._ids: Iterator[int] = count()
        self._current: Dict[str, TxnNode] = {}  # open transaction per thread
        self._depth: Dict[str, int] = {}
        self._last_txn: Dict[str, TxnNode] = {}  # most recent txn per thread
        self._pending_parent: Dict[str, TxnNode] = {}  # fork edges to deliver
        self._last_writer: Dict[str, TxnNode] = {}
        self._last_readers: Dict[str, Dict[str, TxnNode]] = {}
        self._last_releaser: Dict[str, TxnNode] = {}

    def reset(self) -> None:
        self.__init__(
            garbage_collect=self.garbage_collect,
            incremental_topology=self.incremental_topology,
        )

    # -- graph bookkeeping -----------------------------------------------------

    def _new_txn(self, thread: str, completed: bool) -> TxnNode:
        node = TxnNode(next(self._ids), thread)
        node.completed = completed
        self.graph.add_node(node)
        predecessor = self._last_txn.get(thread)
        if predecessor is not None:
            self._link(predecessor, node)
        parent = self._pending_parent.pop(thread, None)
        if parent is not None:
            self._link(parent, node)
        self._last_txn[thread] = node
        return node

    def _link(self, src: TxnNode, dst: TxnNode) -> Optional[Violation]:
        """Add ``src -> dst`` with the per-edge cycle check.

        Returns a violation if the edge closes a cycle. Edges out of
        collected nodes are skipped: a collected node can never be on a
        cycle, so the edge is irrelevant and materialising it would only
        pin ``dst`` in the graph.
        """
        if src is dst or src.collected:
            return None
        if self.graph.creates_cycle(src, dst):
            return Violation(
                event_idx=-1,  # patched by the caller with the event index
                thread=dst.thread,
                site="cycle",
                details=f"edge {src!r} -> {dst!r} closes a transaction cycle",
            )
        self.graph.add_edge(src, dst)
        return None

    def _collect(self, node: TxnNode) -> None:
        """Cascade-delete completed nodes with no incoming edges."""
        if not self.garbage_collect:
            return
        worklist = [node]
        while worklist:
            candidate = worklist.pop()
            if (
                candidate.collected
                or not candidate.completed
                or candidate not in self.graph
                or self.graph.in_degree(candidate) != 0
            ):
                continue
            candidate.collected = True
            worklist.extend(self.graph.remove_node(candidate))

    # -- event -> transaction ----------------------------------------------------

    def _txn_for_event(self, thread: str) -> TxnNode:
        """The transaction the current event belongs to.

        Inside an atomic block this is the open transaction; outside, a
        fresh unary transaction that completes immediately.
        """
        node = self._current.get(thread)
        if node is not None:
            return node
        return self._new_txn(thread, completed=True)

    # -- event handlers ------------------------------------------------------

    def _begin(self, thread: str) -> None:
        depth = self._depth.get(thread, 0)
        self._depth[thread] = depth + 1
        if depth == 0:
            self._current[thread] = self._new_txn(thread, completed=False)

    def _end(self, thread: str, event: Event) -> None:
        depth = self._depth.get(thread, 0)
        if depth == 0:
            raise ValueError(
                f"end without matching begin at event {event.idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        self._depth[thread] = depth - 1
        if depth == 1:
            node = self._current.pop(thread)
            node.completed = True
            self._collect(node)

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event (see :class:`StreamingChecker`)."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        op = event.op
        thread = event.thread
        violation: Optional[Violation] = None

        if op is Op.BEGIN:
            self._begin(thread)
        elif op is Op.END:
            self._end(thread, event)
        else:
            node = self._txn_for_event(thread)
            if op is Op.READ:
                variable = event.target
                assert variable is not None
                writer = self._last_writer.get(variable)
                if writer is not None:
                    violation = self._link(writer, node)
                if violation is None:
                    self._last_readers.setdefault(variable, {})[thread] = node
            elif op is Op.WRITE:
                variable = event.target
                assert variable is not None
                writer = self._last_writer.get(variable)
                if writer is not None:
                    violation = self._link(writer, node)
                if violation is None:
                    for reader in self._last_readers.get(variable, {}).values():
                        violation = self._link(reader, node)
                        if violation is not None:
                            break
                if violation is None:
                    self._last_writer[variable] = node
                    # Readers before this write reach any later conflicting
                    # access through this write's node, so only readers
                    # after the last write need tracking.
                    self._last_readers.pop(variable, None)
            elif op is Op.ACQUIRE:
                lock = event.target
                assert lock is not None
                releaser = self._last_releaser.get(lock)
                if releaser is not None:
                    violation = self._link(releaser, node)
            elif op is Op.RELEASE:
                lock = event.target
                assert lock is not None
                self._last_releaser[lock] = node
            elif op is Op.FORK:
                child = event.target
                assert child is not None
                self._pending_parent[child] = node
            elif op is Op.JOIN:
                child = event.target
                assert child is not None
                child_last = self._last_txn.get(child)
                if child_last is not None:
                    violation = self._link(child_last, node)
            else:  # pragma: no cover - exhaustive over Op
                raise AssertionError(f"unhandled op {op}")
            # Unary transactions complete immediately and may be
            # collectable right away.
            if node.completed:
                self._collect(node)

        self.events_processed += 1
        if violation is not None:
            violation = Violation(
                event_idx=event.idx,
                thread=violation.thread,
                site=violation.site,
                details=violation.details,
            )
            self.violation = violation
        return violation

    # -- statistics ----------------------------------------------------------

    @property
    def graph_size(self) -> int:
        """Current number of live transaction nodes."""
        return len(self.graph)

    @property
    def peak_graph_size(self) -> int:
        """Largest number of simultaneously live nodes seen so far."""
        return self.graph.peak_nodes

    def state_summary(self) -> Dict[str, int]:
        """Graph size — the term the GC optimization fights and the
        vector-clock algorithm avoids entirely."""
        return {
            "events_processed": self.events_processed,
            "live_nodes": len(self.graph),
            "peak_nodes": self.graph.peak_nodes,
            "live_edges": self.graph.edge_count(),
            "edges_added": self.graph.edges_added,
        }
