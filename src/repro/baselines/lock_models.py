"""Lock-unaware conflict models — the Farzan–Madhusudan baseline family.

Farzan and Madhusudan [12] introduced conflict-serializability
monitoring concurrently with Velodrome, but — as the AeroDrome paper
notes in §6 — their model "does not account for any lock operations
which are crucially used in most Java like concurrent programs". Their
original algorithm is automata-theoretic; what matters for comparison
purposes is its *conflict model*, so we reproduce that model on top of
our own checkers rather than the automata bookkeeping:

* ``LockModel.IGNORED`` — lock acquires/releases are dropped from the
  event stream entirely. Release→acquire edges disappear from the
  transaction graph, so cycles that close *through a lock* are missed:
  strictly fewer violations than the standard model (false negatives).
  This is the literal "does not account for lock operations" reading.
* ``LockModel.AS_WRITES`` — each ``acq(ℓ)``/``rel(ℓ)`` is modelled as a
  write to a pseudo-variable ``lock:ℓ``, the natural encoding when the
  monitor only understands memory accesses. On *well-formed* traces
  (critical sections on one lock never overlap) every cross-thread edge
  this induces coincides with a standard release→acquire edge at
  transaction granularity, so the verdict matches the standard model —
  a small reproduction finding documented in
  ``tests/test_lock_models.py`` (property-tested) and EXPERIMENTS.md.
* ``LockModel.STANDARD`` — the paper's §2 conflict model, for reference.

The transformation composes with *any* streaming checker, so the
lock-unaware monitor inherits AeroDrome's linear running time — running
the FM conflict model through a vector-clock engine rather than their
sets-based bookkeeping (which §6 expects to be "orders of magnitude
slower", like Goldilocks vs. FastTrack for races).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator, Optional

from ..core.checker import StreamingChecker
from ..core.violations import Violation
from ..trace.events import Event, Op


class LockModel(Enum):
    """How lock operations enter the conflict relation."""

    STANDARD = "standard"  # rel(ℓ) → acq(ℓ) edges (paper §2)
    IGNORED = "ignored"  # lock events dropped (FM'08 reading)
    AS_WRITES = "as-writes"  # acq/rel become writes to ``lock:ℓ``


#: Prefix for pseudo-variables encoding locks under ``AS_WRITES``.
LOCK_VAR_PREFIX = "lock:"


def transform_lock_events(
    events: Iterable[Event], model: LockModel
) -> Iterator[Event]:
    """Rewrite an event stream according to a lock model.

    Event indices are preserved so violation reports still point into
    the *original* trace. Under ``IGNORED`` the stream shrinks; under
    ``AS_WRITES`` lock events are replaced in place.
    """
    if model is LockModel.STANDARD:
        yield from events
        return
    for event in events:
        if event.op in (Op.ACQUIRE, Op.RELEASE):
            if model is LockModel.IGNORED:
                continue
            assert event.target is not None
            yield Event(
                event.thread,
                Op.WRITE,
                LOCK_VAR_PREFIX + event.target,
                idx=event.idx,
            )
        else:
            yield event


class FarzanMadhusudanChecker(StreamingChecker):
    """Conflict-serializability monitor under a lock-unaware model.

    A thin composition: the lock-model transformation feeding an inner
    streaming checker (optimized AeroDrome by default, so the monitor is
    linear time single-pass like the original aspires to be).

    Args:
        model: The lock model (default ``IGNORED``, the FM'08 reading).
        engine: Registry name of the inner checker.
    """

    def __init__(
        self,
        model: LockModel = LockModel.IGNORED,
        engine: str = "aerodrome",
    ) -> None:
        super().__init__()
        self.model = model
        self.engine = engine
        self.algorithm = f"farzan-madhusudan[{model.value}]"
        from ..api.registry import make_checker

        self._inner = make_checker(engine)

    def reset(self) -> None:
        self.__init__(model=self.model, engine=self.engine)

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event under the configured lock model."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        violation: Optional[Violation] = None
        if event.op in (Op.ACQUIRE, Op.RELEASE):
            if self.model is LockModel.AS_WRITES:
                assert event.target is not None
                rewritten = Event(
                    event.thread,
                    Op.WRITE,
                    LOCK_VAR_PREFIX + event.target,
                    idx=event.idx,
                )
                violation = self._inner.process(rewritten)
            elif self.model is LockModel.STANDARD:
                violation = self._inner.process(event)
            # IGNORED: drop the event.
        else:
            violation = self._inner.process(event)
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation
