"""Baseline checkers and ground truth: Velodrome, DoubleChecker, Atomizer,
the Farzan–Madhusudan lock-model family, and the exact oracle."""

from .atomizer import AtomizerChecker, AtomizerWarning, Mover, atomizer_warnings
from .doublechecker import DoubleCheckerChecker
from .graph import Digraph
from .lock_models import (
    FarzanMadhusudanChecker,
    LockModel,
    transform_lock_events,
)
from .online_cycles import CycleClosedError, IncrementalTopoDigraph
from .oracle import (
    conflict_serializable,
    first_violating_prefix,
    transaction_graph,
    violation_witness,
)
from .velodrome import TxnNode, VelodromeChecker

__all__ = [
    "Digraph",
    "IncrementalTopoDigraph",
    "CycleClosedError",
    "VelodromeChecker",
    "TxnNode",
    "DoubleCheckerChecker",
    "AtomizerChecker",
    "AtomizerWarning",
    "Mover",
    "atomizer_warnings",
    "FarzanMadhusudanChecker",
    "LockModel",
    "transform_lock_events",
    "conflict_serializable",
    "transaction_graph",
    "violation_witness",
    "first_violating_prefix",
]
