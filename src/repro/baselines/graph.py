"""Directed-graph substrate for the graph-based checkers.

Velodrome-style algorithms maintain a transaction graph, add edges as the
trace is processed, and check for a cycle after each edge insertion. This
module provides exactly that: a small adjacency-set digraph with

* O(V+E) reachability queries (:meth:`Digraph.reaches`) used for the
  per-edge cycle check — this is what makes the baseline's worst case
  cubic in the trace length;
* in-degree tracking and cascading removal of acyclic sources, the
  substrate for Velodrome's garbage-collection optimization.

The graph is generic over hashable node objects.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Set, TypeVar

N = TypeVar("N", bound=Hashable)


class Digraph(Generic[N]):
    """A mutable directed graph over hashable nodes."""

    def __init__(self) -> None:
        self._succ: Dict[N, Set[N]] = {}
        self._indeg: Dict[N, int] = {}
        self.edges_added = 0  # lifetime counter, for benchmarks/statistics
        self.peak_nodes = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._indeg[node] = 0
            if len(self._succ) > self.peak_nodes:
                self.peak_nodes = len(self._succ)

    def add_edge(self, src: N, dst: N) -> bool:
        """Insert ``src -> dst``; returns True iff the edge is new.

        Self-loops are rejected (a transaction trivially reaches itself;
        Definition 1 requires k > 1 distinct transactions).
        """
        if src == dst:
            return False
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            return False
        self._succ[src].add(dst)
        self._indeg[dst] += 1
        self.edges_added += 1
        return True

    def remove_node(self, node: N) -> List[N]:
        """Remove ``node``; returns successors whose in-degree dropped to 0."""
        zeroed: List[N] = []
        for succ in self._succ.pop(node):
            self._indeg[succ] -= 1
            if self._indeg[succ] == 0:
                zeroed.append(succ)
        del self._indeg[node]
        return zeroed

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[N]:
        return iter(self._succ)

    def successors(self, node: N) -> Set[N]:
        return self._succ[node]

    def in_degree(self, node: N) -> int:
        return self._indeg[node]

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def reaches(self, src: N, dst: N) -> bool:
        """Whether there is a directed path ``src ->* dst`` (iterative DFS)."""
        if src not in self._succ or dst not in self._succ:
            return False
        if src == dst:
            return True
        stack = [src]
        visited = {src}
        while stack:
            for succ in self._succ[stack.pop()]:
                if succ == dst:
                    return True
                if succ not in visited:
                    visited.add(succ)
                    stack.append(succ)
        return False

    def creates_cycle(self, src: N, dst: N) -> bool:
        """Whether inserting ``src -> dst`` would close a cycle.

        True iff ``dst`` already reaches ``src``. Call before
        :meth:`add_edge` — this is the graph-based checkers' per-edge
        cycle check.
        """
        if src == dst:
            return False
        return self.reaches(dst, src)

    def has_cycle(self) -> bool:
        """Whether the graph currently contains any directed cycle.

        Iterative three-color DFS; used by the oracle, which builds the
        whole graph before asking.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[N, int] = {node: WHITE for node in self._succ}
        for root in self._succ:
            if color[root] != WHITE:
                continue
            stack: List[tuple] = [(root, iter(self._succ[root]))]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        return True
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False

    def strongly_connected_components(self) -> List[List[N]]:
        """Tarjan's SCC algorithm, iteratively (no recursion limit).

        Used by the causal-atomicity extension: a transaction lies on a
        ⋖Txn cycle iff its component has size > 1 (self-loops are
        impossible here, see :meth:`add_edge`).
        """
        index_of: Dict[N, int] = {}
        lowlink: Dict[N, int] = {}
        on_stack: Dict[N, bool] = {}
        stack: List[N] = []
        components: List[List[N]] = []
        counter = [0]

        for root in self._succ:
            if root in index_of:
                continue
            work: List[tuple] = [(root, iter(self._succ[root]))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack[child] = True
                        work.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if on_stack.get(child):
                        lowlink[node] = min(lowlink[node], index_of[child])
                if not advanced:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
                    if lowlink[node] == index_of[node]:
                        component = []
                        while True:
                            member = stack.pop()
                            on_stack[member] = False
                            component.append(member)
                            if member == node:
                                break
                        components.append(component)
        return components

    def find_cycle(self) -> List[N]:
        """A list of nodes forming one directed cycle, or ``[]`` if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[N, int] = {node: WHITE for node in self._succ}
        for root in self._succ:
            if color[root] != WHITE:
                continue
            path: List[N] = [root]
            stack: List[Iterator[N]] = [iter(self._succ[root])]
            color[root] = GRAY
            while stack:
                advanced = False
                for child in stack[-1]:
                    if color[child] == GRAY:
                        return path[path.index(child):]
                    if color[child] == WHITE:
                        color[child] = GRAY
                        path.append(child)
                        stack.append(iter(self._succ[child]))
                        advanced = True
                        break
                if not advanced:
                    color[path.pop()] = BLACK
                    stack.pop()
        return []
