"""Incremental cycle detection via online topological ordering.

The Velodrome baseline's cubic worst case comes from running a full
reachability query on *every* edge insertion. The algorithm of Pearce &
Kelly ("A dynamic topological sort algorithm for directed acyclic
graphs", JEA 2007) does better: it maintains a topological order of the
acyclic transaction graph and only does work when an inserted edge
``x -> y`` goes *against* the current order (``ord(y) < ord(x)``). Then
only the "affected region" — nodes whose order index lies between
``ord(y)`` and ``ord(x)`` — is searched, and a cycle is exactly a
forward path from ``y`` back to ``x`` inside that region.

This gives the graph-based checker a much better amortized bound while
producing the identical verdict, which makes it the natural ablation
point for the paper's central claim: even a state-of-the-art
incremental cycle detector keeps the graph approach super-linear on
adversarial traces, whereas AeroDrome is linear outright. The benchmark
``benchmarks/test_cycle_strategies.py`` measures all three.

:class:`IncrementalTopoDigraph` is interface-compatible with
:class:`repro.baselines.graph.Digraph` as consumed by
:class:`~repro.baselines.velodrome.VelodromeChecker` (``add_node`` /
``creates_cycle`` / ``add_edge`` / ``remove_node`` / degree queries),
with one strengthened invariant: the graph always stays acyclic, and
``add_edge`` raises :class:`CycleClosedError` on an edge that would
close a cycle — callers check :meth:`creates_cycle` first, exactly as
Velodrome does.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Set, TypeVar

N = TypeVar("N", bound=Hashable)


class CycleClosedError(ValueError):
    """``add_edge`` was asked to insert a cycle-closing edge."""


class IncrementalTopoDigraph(Generic[N]):
    """A DAG with a dynamically maintained topological order.

    The order is stored as a sparse integer index per node (``ord``);
    indices are unique and order-consistent but not contiguous, which
    keeps node insertion O(1) and lets :meth:`remove_node` simply drop
    an index.
    """

    def __init__(self) -> None:
        self._succ: Dict[N, Set[N]] = {}
        self._pred: Dict[N, Set[N]] = {}
        self._ord: Dict[N, int] = {}
        self._next_index = 0
        self.edges_added = 0
        self.peak_nodes = 0
        self.reorders = 0  # how often an insertion went against the order

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._ord[node] = self._next_index
            self._next_index += 1
            if len(self._succ) > self.peak_nodes:
                self.peak_nodes = len(self._succ)

    def add_edge(self, src: N, dst: N) -> bool:
        """Insert ``src -> dst``; returns True iff the edge is new.

        Self-loops are rejected (returning False) to match
        :class:`~repro.baselines.graph.Digraph`.

        Raises:
            CycleClosedError: If the edge would close a cycle. Call
                :meth:`creates_cycle` first.
        """
        if src == dst:
            return False
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            return False
        if self._ord[dst] < self._ord[src]:
            self._reorder(src, dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self.edges_added += 1
        return True

    def _affected_forward(self, start: N, upper: int) -> List[N]:
        """Nodes reachable from ``start`` with order index <= ``upper``."""
        visited = {start}
        stack = [start]
        result = [start]
        while stack:
            for succ in self._succ[stack.pop()]:
                if succ not in visited and self._ord[succ] <= upper:
                    visited.add(succ)
                    stack.append(succ)
                    result.append(succ)
        return result

    def _affected_backward(self, start: N, lower: int) -> List[N]:
        """Nodes reaching ``start`` with order index >= ``lower``."""
        visited = {start}
        stack = [start]
        result = [start]
        while stack:
            for pred in self._pred[stack.pop()]:
                if pred not in visited and self._ord[pred] >= lower:
                    visited.add(pred)
                    stack.append(pred)
                    result.append(pred)
        return result

    def _reorder(self, src: N, dst: N) -> None:
        """Pearce–Kelly reordering for a back-edge ``src -> dst``.

        Precondition: inserting the edge keeps the graph acyclic (the
        caller verified via :meth:`creates_cycle`).
        """
        lower, upper = self._ord[dst], self._ord[src]
        delta_f = self._affected_forward(dst, upper)
        if src in delta_f:
            raise CycleClosedError(f"edge {src!r} -> {dst!r} closes a cycle")
        delta_b = self._affected_backward(src, lower)
        # Shuffle the affected nodes into the gap: everything that
        # reaches src comes first (in existing relative order), then
        # everything reachable from dst.
        delta_b.sort(key=self._ord.__getitem__)
        delta_f.sort(key=self._ord.__getitem__)
        indices = sorted(self._ord[n] for n in delta_b + delta_f)
        for node, index in zip(delta_b + delta_f, indices):
            self._ord[node] = index
        self.reorders += 1

    def remove_node(self, node: N) -> List[N]:
        """Remove ``node``; returns successors whose in-degree hit 0."""
        for pred in self._pred[node]:
            self._succ[pred].discard(node)
        zeroed: List[N] = []
        for succ in self._succ[node]:
            self._pred[succ].discard(node)
            if not self._pred[succ]:
                zeroed.append(succ)
        del self._succ[node]
        del self._pred[node]
        del self._ord[node]
        return zeroed

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[N]:
        return iter(self._succ)

    def successors(self, node: N) -> Set[N]:
        return self._succ[node]

    def in_degree(self, node: N) -> int:
        return len(self._pred[node])

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def order_index(self, node: N) -> int:
        """The node's current topological-order index (for tests)."""
        return self._ord[node]

    def creates_cycle(self, src: N, dst: N) -> bool:
        """Whether inserting ``src -> dst`` would close a cycle.

        O(1) when the edge respects the current order; otherwise a DFS
        bounded to the affected region.
        """
        if src == dst:
            return False
        if src not in self._succ or dst not in self._succ:
            return False
        if self._ord[src] < self._ord[dst]:
            return False
        return src in self._affected_forward(dst, self._ord[src])

    def is_topological(self) -> bool:
        """Invariant check (tests): every edge goes forward in the order."""
        return all(
            self._ord[src] < self._ord[dst]
            for src, succs in self._succ.items()
            for dst in succs
        )

    def has_cycle(self) -> bool:
        """Always False — the graph maintains acyclicity by construction."""
        return False
