"""Atomizer — Flanagan & Freund's reduction-based dynamic atomicity checker.

Atomizer [13] predates conflict serializability checking and is the
canonical *unsound* (false-alarm-prone) baseline the AeroDrome paper
contrasts against in §1 and §6. It is built on Lipton's theory of
reduction: an atomic block is *reducible* — equivalent to executing
without interruption — if its events form the pattern::

    (right-mover | both-mover)*  [non-mover]  (left-mover | both-mover)*

where

* lock **acquires** are right-movers (they commute later in time past
  other threads' events),
* lock **releases** are left-movers (they commute earlier),
* **race-free accesses** are both-movers,
* **racy accesses** (per the Eraser lockset analysis,
  :mod:`repro.analysis.lockset`) are non-movers, of which at most one
  may appear — it is the block's commit point.

The checker keeps a two-phase automaton per active transaction: in the
*pre-commit* phase every mover kind is allowed; the first left-mover or
non-mover commits the block; in the *post-commit* phase a right-mover or
a second non-mover is a reduction failure, reported as an atomicity
warning.

Unsoundness, demonstrated in ``tests/test_atomizer.py``: the lockset
analysis does not understand fork/join ordering, so accesses that are
perfectly ordered by happens-before get classified as non-movers, and
reducible blocks around them get flagged. Conflict-serializability
checkers (AeroDrome, Velodrome, the oracle) accept those traces. The
reverse also holds — Atomizer misses violations whose cycle involves no
lock and no lockset race — so its verdict is incomparable to the
conflict-serializability ground truth, which is why the field moved to
Velodrome-style checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..analysis.lockset import LocksetAnalyzer
from ..core.checker import StreamingChecker
from ..core.violations import Violation
from ..trace.events import Event, Op


class Mover(Enum):
    """Lipton mover classification of a single event."""

    RIGHT = "right"  # lock acquire
    LEFT = "left"  # lock release
    BOTH = "both"  # race-free access (and fork/join/markers)
    NON = "non"  # racy access: the commit point


class _Phase(Enum):
    PRE = "pre-commit"
    POST = "post-commit"


@dataclass(frozen=True)
class AtomizerWarning:
    """A reduction failure reported by Atomizer.

    Attributes:
        event_idx: Trace index of the offending event.
        thread: Thread whose atomic block failed to reduce.
        mover: Classification of the offending event.
        reason: Human-readable explanation.
    """

    event_idx: int
    thread: str
    mover: Mover
    reason: str

    def __str__(self) -> str:
        return (
            f"atomizer: block in {self.thread} not reducible at event "
            f"{self.event_idx} ({self.reason})"
        )


class AtomizerChecker(StreamingChecker):
    """Streaming Atomizer (Lipton-reduction) atomicity checker.

    Like the paper's checkers this stops at the first warning when driven
    through :meth:`run`; use :func:`atomizer_warnings` to collect every
    warning in a trace.

    The mover classification is *online*: an access is a non-mover iff
    the lockset analysis has flagged its variable **by the time the
    access happens**, mirroring how the original tool piggybacked on an
    in-process Eraser.
    """

    algorithm = "atomizer"

    def __init__(self) -> None:
        super().__init__()
        self._lockset = LocksetAnalyzer()
        self._phase: Dict[str, _Phase] = {}  # per open transaction
        self._depth: Dict[str, int] = {}

    # -- mover classification ------------------------------------------------

    def classify(self, event: Event) -> Mover:
        """Lipton classification of ``event`` given the current lockset state.

        Call *after* the event was fed to the lockset analyzer so a racy
        access is recognised at its own occurrence.
        """
        op = event.op
        if op is Op.ACQUIRE:
            return Mover.RIGHT
        if op is Op.RELEASE:
            return Mover.LEFT
        if op in (Op.READ, Op.WRITE):
            assert event.target is not None
            if self._lockset.is_racy(event.target):
                return Mover.NON
            return Mover.BOTH
        return Mover.BOTH  # fork/join and markers commute both ways here

    # -- the two-phase reduction automaton ---------------------------------

    def _step_automaton(self, event: Event, mover: Mover) -> Optional[Violation]:
        thread = event.thread
        phase = self._phase.get(thread)
        if phase is None:
            return None  # not inside an atomic block: nothing to reduce
        if phase is _Phase.PRE:
            if mover is Mover.LEFT or mover is Mover.NON:
                self._phase[thread] = _Phase.POST
            return None
        # post-commit phase: right-movers and further non-movers break
        # the (R|B)* [N] (L|B)* pattern.
        if mover is Mover.RIGHT:
            reason = "lock acquire (right-mover) after the commit point"
        elif mover is Mover.NON:
            reason = "second racy access (non-mover) after the commit point"
        else:
            return None
        return Violation(
            event_idx=event.idx,
            thread=thread,
            site="reduction",
            details=reason,
        )

    # -- event dispatch ------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event; return a violation iff reduction fails here."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        thread = event.thread
        op = event.op
        violation: Optional[Violation] = None

        if op is Op.BEGIN:
            depth = self._depth.get(thread, 0)
            self._depth[thread] = depth + 1
            if depth == 0:
                self._phase[thread] = _Phase.PRE
        elif op is Op.END:
            depth = self._depth.get(thread, 0)
            if depth == 0:
                raise ValueError(
                    f"end without matching begin at event {event.idx}; "
                    "validate the trace with repro.trace.wellformed first"
                )
            self._depth[thread] = depth - 1
            if depth == 1:
                self._phase.pop(thread, None)
        else:
            self._lockset.process(event)
            mover = self.classify(event)
            violation = self._step_automaton(event, mover)

        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation


def atomizer_warnings(events: Iterable[Event]) -> List[AtomizerWarning]:
    """Every reduction failure in a trace (does not stop at the first).

    After a failure the offending block's phase is reset to post-commit
    so one block produces at most one warning per offending event kind
    sequence; distinct blocks are reported independently.
    """
    checker = AtomizerChecker()
    warnings: List[AtomizerWarning] = []
    for event in events:
        violation = checker.process(event)
        if violation is not None:
            mover = Mover.RIGHT if "right-mover" in violation.details else Mover.NON
            warnings.append(
                AtomizerWarning(
                    event_idx=violation.event_idx,
                    thread=violation.thread,
                    mover=mover,
                    reason=violation.details,
                )
            )
            checker.violation = None  # keep scanning
    return warnings
