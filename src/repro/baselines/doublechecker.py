"""A simplified DoubleChecker-style two-phase checker.

DoubleChecker [5] splits conflict-serializability checking into a fast,
imprecise first pass that over-approximates the set of transaction-graph
cycles, followed by a precise second pass that filters false positives.
The paper compares against it only narratively (Section 5.1: an
order-of-magnitude slower on a benchmark subset, not an apples-to-apples
comparison); we include a faithful miniature so the comparison experiment
(E6 in DESIGN.md) can be run at all.

* **Phase 1 (imprecise-but-sound-for-absence)**: build a coarse
  transaction graph that treats *any* two accesses to a common variable
  as conflicting (even read–read) and ignores per-thread reader
  tracking. The coarse ⋖ relation is a superset of ⋖Txn, so an acyclic
  coarse graph proves the trace serializable without a second pass.
* **Phase 2 (precise)**: if the coarse graph has a cycle, replay the
  buffered events through Velodrome to confirm or refute it.

Unlike the single-pass checkers this one buffers the trace (DoubleChecker
runs its phases in vivo, which is exactly why the paper could not compare
against it on logged traces).
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional

from ..core.checker import StreamingChecker
from ..core.violations import Violation
from ..trace.events import Event, Op
from .graph import Digraph
from .velodrome import VelodromeChecker


class _CoarsePass:
    """Phase 1: coarse transaction graph (read-read treated as conflict)."""

    def __init__(self) -> None:
        self.graph: Digraph[int] = Digraph()
        self._ids = count()
        self._current: Dict[str, int] = {}
        self._depth: Dict[str, int] = {}
        self._last_txn: Dict[str, int] = {}
        self._last_accessor: Dict[str, int] = {}  # any access to a variable
        self._last_lock_user: Dict[str, int] = {}  # any acquire/release

    def _new_txn(self, thread: str) -> int:
        tid = next(self._ids)
        self.graph.add_node(tid)
        previous = self._last_txn.get(thread)
        if previous is not None:
            self.graph.add_edge(previous, tid)
        self._last_txn[thread] = tid
        return tid

    def _txn(self, thread: str) -> int:
        tid = self._current.get(thread)
        if tid is not None:
            return tid
        return self._new_txn(thread)

    def feed(self, event: Event) -> None:
        op = event.op
        thread = event.thread
        if op is Op.BEGIN:
            depth = self._depth.get(thread, 0)
            self._depth[thread] = depth + 1
            if depth == 0:
                self._current[thread] = self._new_txn(thread)
            return
        if op is Op.END:
            depth = self._depth.get(thread, 0)
            self._depth[thread] = depth - 1
            if depth == 1:
                self._current.pop(thread, None)
            return
        tid = self._txn(thread)
        if op is Op.READ or op is Op.WRITE:
            variable = event.target
            assert variable is not None
            previous = self._last_accessor.get(variable)
            if previous is not None:
                self.graph.add_edge(previous, tid)
            self._last_accessor[variable] = tid
        elif op is Op.ACQUIRE or op is Op.RELEASE:
            lock = event.target
            assert lock is not None
            previous = self._last_lock_user.get(lock)
            if previous is not None:
                self.graph.add_edge(previous, tid)
            self._last_lock_user[lock] = tid
        elif op is Op.FORK or op is Op.JOIN:
            other = event.target
            assert other is not None
            if op is Op.FORK:
                # Delivered when the child creates its first transaction.
                self._last_txn.setdefault(other, tid)
            else:
                previous = self._last_txn.get(other)
                if previous is not None:
                    self.graph.add_edge(previous, tid)

    def may_have_cycle(self) -> bool:
        return self.graph.has_cycle()


class DoubleCheckerChecker(StreamingChecker):
    """Two-phase checker: coarse screening pass, precise Velodrome pass."""

    algorithm = "doublechecker"

    def __init__(self) -> None:
        super().__init__()
        self._coarse = _CoarsePass()
        self._buffer: List[Event] = []
        self._finalized = False

    def process(self, event: Event) -> Optional[Violation]:
        """Buffer the event into phase 1; the verdict comes from result()."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        self._coarse.feed(event)
        self._buffer.append(event)
        self.events_processed += 1
        return None

    def result(self):
        """Run phase 2 (if phase 1 found potential cycles) and report."""
        if not self._finalized:
            self._finalized = True
            if self._coarse.may_have_cycle():
                precise = VelodromeChecker(garbage_collect=True)
                verdict = precise.run(self._buffer)
                self.violation = verdict.violation
        return super().result()
