"""Central analysis registry — the one front door to every analysis.

Replaces the private ``_registry()`` in :mod:`repro.core.checker` and
the hand-maintained imports in :mod:`repro.cli`. Three name families
live here:

* **checker algorithms** (``aerodrome``, ``velodrome``, …) — every
  :class:`~repro.core.checker.StreamingChecker`, instantiable directly
  via :func:`make_checker` or as a session analysis (in any run mode)
  via :func:`create_analysis`;
* **built-in analyses** (``races``, ``lockset``, ``profile``,
  ``viewserial``, ``causal``, ``explain``) — the ``repro.analysis``
  passes wrapped as :class:`~repro.api.analysis.Analysis` adapters;
* **plugins** — anything registered through :func:`register_analysis`
  in-process, or discovered from ``importlib.metadata`` entry points in
  the ``repro.analyses`` group (each entry point loads to a zero-or-
  keyword-argument factory returning an ``Analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .analysis import (
    Analysis,
    CausalAnalysis,
    CheckerAnalysis,
    ExplainAnalysis,
    LocksetAnalysis,
    ProfileAnalysis,
    RacesAnalysis,
    ViewSerialAnalysis,
)

#: Entry-point group scanned for third-party analyses.
ENTRY_POINT_GROUP = "repro.analyses"


def _checker_factories() -> Dict[str, Callable[[], object]]:
    # Imported lazily: the algorithm modules import repro.core.checker
    # (and transitively this package) for the base class.
    from ..baselines.atomizer import AtomizerChecker
    from ..baselines.doublechecker import DoubleCheckerChecker
    from ..baselines.velodrome import VelodromeChecker
    from ..core.aerodrome import AeroDromeChecker
    from ..core.aerodrome_opt import OptimizedAeroDromeChecker
    from ..core.sharded import ShardedAeroDromeChecker

    return {
        "aerodrome": OptimizedAeroDromeChecker,
        "aerodrome-basic": AeroDromeChecker,
        "aerodrome-sharded": ShardedAeroDromeChecker,
        "velodrome": lambda: VelodromeChecker(garbage_collect=True),
        "velodrome-nogc": lambda: VelodromeChecker(garbage_collect=False),
        "velodrome-pk": lambda: VelodromeChecker(incremental_topology=True),
        "doublechecker": DoubleCheckerChecker,
        "atomizer": AtomizerChecker,
    }


def checker_names() -> List[str]:
    """Registry names of the streaming checkers, sorted."""
    return sorted(_checker_factories())


def make_checker(algorithm: str = "aerodrome"):
    """Instantiate a fresh :class:`StreamingChecker` by registry name.

    The non-deprecated home of what ``repro.core.checker.make_checker``
    used to do (that facade now delegates here, with a warning).
    """
    registry = _checker_factories()
    try:
        factory = registry[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(registry)}"
        ) from None
    return factory()


@dataclass(frozen=True)
class AnalysisSpec:
    """One registry row.

    Attributes:
        name: The registry key (also the default report key).
        factory: Callable returning a fresh :class:`Analysis`; keyword
            arguments from :func:`create_analysis` are forwarded when
            the factory accepts them.
        kind: Family tag (``"checker"``, ``"races"``, …).
        summary: One-line description for ``repro algorithms`` /docs.
    """

    name: str
    factory: Callable[..., Analysis]
    kind: str = "analysis"
    summary: str = ""


_BUILTIN_ANALYSES = (
    AnalysisSpec("races", RacesAnalysis, "races",
                 "FastTrack happens-before data races"),
    AnalysisSpec("lockset", LocksetAnalysis, "lockset",
                 "Eraser lockset race warnings"),
    AnalysisSpec("profile", ProfileAnalysis, "profile",
                 "workload shape report"),
    AnalysisSpec("viewserial", ViewSerialAnalysis, "viewserial",
                 "exact view serializability (small traces)"),
    AnalysisSpec("causal", CausalAnalysis, "causal",
                 "per-transaction causal atomicity"),
    AnalysisSpec("explain", ExplainAnalysis, "explain",
                 "witness cycle extraction"),
)

#: In-process plugin registrations (name -> spec).
_PLUGINS: Dict[str, AnalysisSpec] = {}

_entry_points_loaded = False


def register_analysis(
    name: str,
    factory: Callable[..., Analysis],
    kind: str = "analysis",
    summary: str = "",
) -> None:
    """Register (or replace) an analysis under ``name``.

    Checker algorithm names are reserved; registering over one raises.
    """
    if name in _checker_factories():
        raise ValueError(f"{name!r} is a checker algorithm name; pick another")
    _PLUGINS[name] = AnalysisSpec(name, factory, kind, summary)


def unregister_analysis(name: str) -> None:
    """Remove a plugin registration (built-ins cannot be removed)."""
    _PLUGINS.pop(name, None)


def _lazy_entry_factory(entry) -> Callable[..., Analysis]:
    """Defer ``entry.load()`` until the analysis is actually created.

    Listing analyses (every CLI startup does, for ``--analysis`` help)
    must not import third-party plugin modules; only resolving the name
    pays that cost — and a broken plugin fails loudly there, not
    silently at discovery.
    """

    def factory(**options) -> Analysis:
        loaded = entry.load()
        return loaded(**options) if options else loaded()

    return factory


def _load_entry_points() -> None:
    """Best-effort discovery of ``repro.analyses`` entry points."""
    global _entry_points_loaded
    if _entry_points_loaded:
        return
    _entry_points_loaded = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8
        return
    try:
        found = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - py<3.10 select API
        found = entry_points().get(ENTRY_POINT_GROUP, [])
    for entry in found:
        if entry.name in _PLUGINS or entry.name in _checker_factories():
            continue
        _PLUGINS[entry.name] = AnalysisSpec(
            entry.name,
            _lazy_entry_factory(entry),
            "plugin",
            f"entry point {entry.value}",
        )


def _specs() -> Dict[str, AnalysisSpec]:
    _load_entry_points()
    table: Dict[str, AnalysisSpec] = {}
    for name, factory in _checker_factories().items():
        table[name] = AnalysisSpec(
            name,
            _checker_analysis_factory(name),
            "checker",
            "conflict-serializability checker",
        )
    for spec in _BUILTIN_ANALYSES:
        table[spec.name] = spec
    table.update(_PLUGINS)
    return table


def _checker_analysis_factory(algorithm: str) -> Callable[..., Analysis]:
    def factory(**options) -> Analysis:
        return CheckerAnalysis(algorithm=algorithm, **options)

    return factory


def available_analyses() -> List[str]:
    """Every name :func:`create_analysis` accepts, sorted."""
    return sorted(_specs())


def analysis_specs() -> List[AnalysisSpec]:
    """All registry rows, sorted by name."""
    return [spec for _, spec in sorted(_specs().items())]


def create_analysis(name: str, **options) -> Analysis:
    """Instantiate a fresh analysis by registry name.

    Keyword ``options`` (e.g. ``mode=\"report_all\"``, ``dedupe=True``,
    ``top=5``) are forwarded to the factory; factories that take no
    options reject unexpected keywords naturally.
    """
    specs = _specs()
    try:
        spec = specs[name]
    except KeyError:
        raise ValueError(
            f"unknown analysis {name!r}; choose from {sorted(specs)}"
        ) from None
    return spec.factory(**options) if options else spec.factory()
