"""The ``Analysis`` protocol and adapters for every built-in analysis.

An analysis is anything that can ride the session's single event sweep:

* ``begin(meta)`` — called once before the sweep with the trace's
  :class:`TraceMeta`;
* ``step(event)`` — consume one string event (the session calls this on
  the string path, and on the packed path for analyses without a packed
  binding — the reconstructed event is shared across all such analyses);
* ``bind_packed(packed)`` — optionally return a
  ``step(op, thread, target, idx)`` callable over packed integer
  records; returning ``None`` keeps the event-object path;
* ``finish()`` — wrap up into a :class:`~repro.api.report.Report`;
* ``finished`` — set ``True`` to tell the session this analysis needs
  no more events (the sweep stops early once every analysis is done).

Adapters below wrap every existing entrypoint — the
:class:`~repro.core.checker.StreamingChecker` family (all ``repro.core``
and ``repro.baselines`` checkers), FastTrack races, the Eraser lockset,
the workload profile, view serializability, causal atomicity and the
witness-cycle explainer — so they co-run on one ingest with payloads
identical to their standalone runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Set, Tuple

from ..trace.events import Event, Op
from ..trace.packed import PackedTrace
from ..trace.trace import Trace
from ..core.violations import CheckResult, Violation
from .report import Report, finding_dict

#: The run modes a checker analysis understands.
MODES = ("stop_first", "report_all", "sample")

_BEGIN, _END = int(Op.BEGIN), int(Op.END)
_READ, _WRITE = int(Op.READ), int(Op.WRITE)


@dataclass(frozen=True)
class TraceMeta:
    """What an analysis learns about the trace before the sweep.

    Attributes:
        name: Trace name.
        events: Event count, or ``None`` for bare iterables.
        packed: Whether the sweep runs over packed integer records.
        source: The trace object itself (``Trace``/``PackedTrace``), for
            offline analyses that postprocess the whole trace at
            ``finish()``; ``None`` when the session consumes a one-shot
            iterator.
    """

    name: str
    events: Optional[int]
    packed: bool
    source: Any = None


class Analysis:
    """Base class (and de-facto protocol) for session analyses.

    Instances are single-use: construct a fresh one per session, the way
    checkers are constructed fresh per run.
    """

    #: Registry name; also the report key.
    name: str = "abstract"
    #: Family tag for the JSON report.
    kind: str = "analysis"
    #: Run mode label for the JSON report.
    mode: str = "stream"

    def __init__(self) -> None:
        self.finished = False
        self.meta: Optional[TraceMeta] = None

    def begin(self, meta: TraceMeta) -> None:
        self.meta = meta

    def step(self, event: Event) -> None:
        raise NotImplementedError

    def bind_packed(
        self, packed: PackedTrace
    ) -> Optional[Callable[[int, int, int, int], None]]:
        """A packed-record step, or ``None`` to receive events instead."""
        return None

    def finish(self) -> Report:
        raise NotImplementedError


class CheckerAnalysis(Analysis):
    """Any :class:`~repro.core.checker.StreamingChecker` as an analysis.

    Modes:

    * ``stop_first`` — the paper's semantics: stop at the first
      violation; the report's ``native`` is the checker's
      :class:`~repro.core.violations.CheckResult`, identical to a
      standalone ``checker.run(...)``.
    * ``report_all`` — report-and-continue (the semantics previously
      private to :mod:`repro.core.multi`): clear the verdict after each
      hit and keep feeding, with optional ``dedupe`` (mute repeated
      (thread, site) pairs until that thread's next transaction
      boundary) and ``limit``.
    * ``sample`` — screening mode: only every ``sample_every``-th
      memory access is fed (synchronization and marker events always
      pass through), stopping at the first violation. Unsound and
      incomplete by construction — a cheap first look at huge traces.
    """

    kind = "checker"

    def __init__(
        self,
        algorithm: str = "aerodrome",
        checker: Any = None,
        mode: str = "stop_first",
        dedupe: bool = False,
        limit: Optional[int] = None,
        sample_every: int = 10,
    ) -> None:
        super().__init__()
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        if checker is None:
            from .registry import make_checker

            checker = make_checker(algorithm)
        self.checker = checker
        self.algorithm = algorithm
        self.name = algorithm
        self.mode = mode
        self.dedupe = dedupe
        self.limit = limit
        self.sample_every = max(1, sample_every)
        self.violations: List[Violation] = []
        self._muted: Set[Tuple[str, str]] = set()
        self._steps = 0
        self._counted_before = 0
        self._found: Optional[Violation] = None
        self._accesses = 0
        self._packed = False

    # -- string path -------------------------------------------------------

    def begin(self, meta: TraceMeta) -> None:
        super().begin(meta)
        self._counted_before = self.checker.events_processed

    def _sampled_out(self, is_access: bool) -> bool:
        if self.mode != "sample" or not is_access:
            return False
        keep = self._accesses % self.sample_every == 0
        self._accesses += 1
        return not keep

    def step(self, event: Event) -> None:
        op = event.op
        if self._sampled_out(op is Op.READ or op is Op.WRITE):
            return
        if self.mode == "report_all":
            if self.dedupe and (op is Op.BEGIN or op is Op.END):
                thread = event.thread
                self._muted = {k for k in self._muted if k[0] != thread}
            violation = self.checker.process(event)
            if violation is not None:
                self.checker.violation = None  # report-and-continue
                self._record(violation)
            return
        violation = self.checker.process(event)
        if violation is not None:
            self.finished = True

    def _record(self, violation: Violation) -> None:
        key = (violation.thread, violation.site)
        if self.dedupe:
            if key in self._muted:
                return
            self._muted.add(key)
        self.violations.append(violation)
        if self.limit is not None and len(self.violations) >= self.limit:
            self.finished = True

    # -- packed path -------------------------------------------------------

    def bind_packed(self, packed: PackedTrace):
        inner = self.checker.packed_step(packed)
        if not self._packed:
            # First bind only: a rebind (checkpoint restore mid-stream)
            # must keep the original baseline, or finish() would add
            # the step count on top of a checker that already counted.
            self._packed = True
            self._counted_before = self.checker.events_processed
        if self.mode == "report_all":
            thread_names = packed.thread_names
            dedupe = self.dedupe

            def step(op: int, t: int, target: int, idx: int) -> None:
                self._steps += 1
                if dedupe and (op == _BEGIN or op == _END):
                    name = thread_names[t]
                    self._muted = {k for k in self._muted if k[0] != name}
                violation = inner(op, t, target, idx)
                if violation is not None:
                    self.checker.violation = None  # report-and-continue
                    self._record(violation)

            return step

        sampling = self.mode == "sample"

        def step(op: int, t: int, target: int, idx: int) -> None:
            if sampling and self._sampled_out(op == _READ or op == _WRITE):
                return
            self._steps += 1
            violation = inner(op, t, target, idx)
            if violation is not None:
                self._found = violation
                self.finished = True

        return step

    # -- solo fast path ----------------------------------------------------

    def can_run_solo(self) -> bool:
        """Whether the checker's own (possibly inlined) loop is usable."""
        return self.mode == "stop_first"

    def run_solo(self, events: Any) -> None:
        """Drive the checker's own ``run``/``run_packed`` hot loop."""
        self.checker.run(events)
        self.finished = True

    # -- wrap-up -----------------------------------------------------------

    def finish(self) -> Report:
        checker = self.checker
        if self._packed:
            # Mirror run_packed's bookkeeping contract: fast packed
            # steps leave the counter and the verdict to the driver.
            if checker.events_processed == self._counted_before:
                checker.events_processed += self._steps
            if self._found is not None and checker.violation is None:
                checker.violation = self._found
        result: CheckResult = checker.result()
        if self.mode == "report_all":
            verdict = not self.violations
            summary = (
                "✓ no violations"
                if verdict
                else f"✗ {len(self.violations)} violation report(s)"
            )
            return Report(
                analysis=self.name,
                kind=self.kind,
                mode=self.mode,
                verdict=verdict,
                violations=[finding_dict(v) for v in self.violations],
                payload={
                    "algorithm": self.algorithm,
                    "dedupe": self.dedupe,
                    "limit": self.limit,
                },
                events_processed=result.events_processed,
                summary=summary,
                native=list(self.violations),
            )
        verdict = result.serializable
        summary = (
            f"✓ serializable after {result.events_processed} events"
            if verdict
            else f"✗ {result.violation}"
        )
        payload = {"algorithm": self.algorithm}
        if self.mode == "sample":
            payload["sample_every"] = self.sample_every
            summary += " (sampled; screening only)"
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=verdict,
            violations=(
                [] if result.violation is None else [finding_dict(result.violation)]
            ),
            payload=payload,
            events_processed=result.events_processed,
            summary=summary,
            native=result,
        )


class RacesAnalysis(Analysis):
    """FastTrack happens-before race detection as a session analysis."""

    name = "races"
    kind = "races"
    mode = "report_all"

    def __init__(self) -> None:
        super().__init__()
        from ..analysis.races import FastTrackDetector

        self.detector = FastTrackDetector()
        self.step = self.detector.process  # bound hot path

    def finish(self) -> Report:
        races = self.detector.races
        verdict = not races
        summary = (
            "no happens-before data races"
            if verdict
            else f"{len(races)} race(s) on "
            f"{len(self.detector.racy_variables)} variable(s)"
        )
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=verdict,
            violations=[finding_dict(r) for r in races],
            payload={"racy_variables": sorted(self.detector.racy_variables)},
            events_processed=self.detector.events_processed,
            summary=summary,
            native=races,
        )


class LocksetAnalysis(Analysis):
    """Eraser lockset warnings as a session analysis."""

    name = "lockset"
    kind = "lockset"
    mode = "report_all"

    def __init__(self) -> None:
        super().__init__()
        from ..analysis.lockset import LocksetAnalyzer

        self.analyzer = LocksetAnalyzer()
        self.step = self.analyzer.process

    def finish(self) -> Report:
        report = self.analyzer.report()
        verdict = not report.warnings
        summary = f"{len(report.warnings)} lockset warning(s)"
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=verdict,
            violations=[finding_dict(w) for w in report.warnings],
            payload={
                "racy_variables": sorted(report.racy_variables),
                "final_states": {
                    variable: state.value
                    for variable, state in sorted(report.final_states.items())
                },
            },
            events_processed=self.analyzer.events_processed,
            summary=summary,
            native=report,
        )


class BufferedAnalysis(Analysis):
    """Base for whole-trace analyses riding the sweep.

    When the session already holds the complete string trace
    (``meta.source``), the analysis uses it directly at ``finish()``
    and leaves the sweep immediately — a solo offline verb costs no
    per-event work at all. Otherwise (packed sweeps, one-shot
    iterators) it buffers the swept events (references only — on the
    packed path these are the session's shared reconstructed events)
    and rebuilds an equivalent trace at ``finish()``. Either way the
    offline computation runs once, composed with streaming analyses on
    the same ingest.
    """

    mode = "offline"

    def __init__(self) -> None:
        super().__init__()
        self._events: List[Event] = []
        self._source: Optional[Trace] = None
        self.step = self._events.append  # bound hot path

    def begin(self, meta: TraceMeta) -> None:
        super().begin(meta)
        if isinstance(meta.source, Trace):
            self._source = meta.source
            self.step = lambda event: None
            self.finished = True  # needs no events from the sweep

    def __getstate__(self):
        # ``step`` is a rebindable hot-path alias (possibly a lambda);
        # drop it so mid-stream sessions checkpoint cleanly.
        state = self.__dict__.copy()
        state.pop("step", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._source is not None:
            self.step = lambda event: None
        else:
            self.step = self._events.append

    def _buffered_trace(self) -> Trace:
        if self._source is not None:
            return self._source
        name = self.meta.name if self.meta is not None else "trace"
        return Trace(self._events, name=name)

    def events_seen(self) -> int:
        if self._source is not None:
            return len(self._source)
        return len(self._events)


class ProfileAnalysis(BufferedAnalysis):
    """Workload-shape profile (always passes; purely informational)."""

    name = "profile"
    kind = "profile"

    def __init__(self, top: int = 10) -> None:
        super().__init__()
        self.top = top

    def finish(self) -> Report:
        from ..analysis.profile import profile_trace

        profile = profile_trace(self._buffered_trace())
        payload = {
            "threads": len(profile.threads),
            "transactions": profile.transactions,
            "unary_transactions": profile.unary_transactions,
            "op_counts": {
                op.name.lower(): count
                for op, count in sorted(profile.op_counts.items())
            },
            "cross_thread_conflicts": profile.cross_thread_conflicts,
            "first_cross_conflict_idx": profile.first_cross_conflict_idx,
            "hot_variables": [
                {
                    "name": v.name,
                    "reads": v.reads,
                    "writes": v.writes,
                    "threads": len(v.threads),
                }
                for v in profile.variables[: self.top]
            ],
        }
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=True,
            payload=payload,
            events_processed=profile.events,
            summary=(
                f"{profile.events} events, {profile.transactions} transactions, "
                f"{profile.cross_thread_conflicts} cross-thread conflicts"
            ),
            native=profile,
        )


class ViewSerialAnalysis(BufferedAnalysis):
    """Exact view serializability (NP-complete; bounded search)."""

    name = "viewserial"
    kind = "viewserial"

    def finish(self) -> Report:
        from ..analysis.view_serializability import (
            TooManyTransactions,
            serializing_order,
        )

        try:
            order = serializing_order(self._buffered_trace())
        except TooManyTransactions as error:
            return Report(
                analysis=self.name,
                kind=self.kind,
                mode=self.mode,
                verdict=None,
                payload={"undecided": str(error)},
                events_processed=self.events_seen(),
                summary=f"undecided: {error}",
                native=None,
            )
        verdict = order is not None
        summary = (
            "view serializable; witness order: "
            + " ".join(f"T{t}" for t in order)
            if verdict
            else "not view serializable"
        )
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=verdict,
            payload={"order": order},
            events_processed=self.events_seen(),
            summary=summary,
            native=order,
        )


class CausalAnalysis(BufferedAnalysis):
    """Per-transaction causal atomicity (oracle-grade, quadratic)."""

    name = "causal"
    kind = "causal"

    def finish(self) -> Report:
        from ..analysis.causal import check_causal_atomicity

        report = check_causal_atomicity(self._buffered_trace())
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=report.all_atomic,
            violations=[
                {"tid": txn.tid, "thread": txn.thread} for txn in report.violating
            ],
            payload={"transactions": len(report.transactions)},
            events_processed=self.events_seen(),
            summary=str(report),
            native=report,
        )


class ExplainAnalysis(BufferedAnalysis):
    """Witness-cycle extraction for a violating trace."""

    name = "explain"
    kind = "explain"

    def finish(self) -> Report:
        from ..analysis.explain import explain

        explanation = explain(self._buffered_trace())
        verdict = explanation is None
        if verdict:
            summary = "conflict serializable: nothing to explain"
            payload: dict = {}
        else:
            summary = (
                f"witness cycle of {len(explanation.cycle)} transaction(s)"
            )
            payload = {
                "prefix_length": explanation.prefix_length,
                "cycle": [txn.tid for txn in explanation.cycle],
                "edges": [str(edge) for edge in explanation.edges],
            }
        return Report(
            analysis=self.name,
            kind=self.kind,
            mode=self.mode,
            verdict=verdict,
            payload=payload,
            events_processed=self.events_seen(),
            summary=summary,
            native=explanation,
        )
