"""Structured analysis reports — the stable JSON surface of ``repro.api``.

Every analysis driven by a :class:`~repro.api.session.Session` finishes
into a :class:`Report`; the session collects them into a
:class:`SessionResult` whose :meth:`~SessionResult.to_json` emits the
versioned ``repro-report/1`` schema shared by the CLI (``--json``), the
bench harness and the tests. The schema is documented in ``docs/API.md``
and machine-checked by :func:`validate_report` (CI's CLI smoke job runs
it against a real ``repro check --json`` invocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, is_dataclass, asdict
from typing import Any, Dict, List, Mapping, Optional

#: Version tag stamped into every serialized session result.
SCHEMA = "repro-report/1"

#: The three verdict labels of the JSON schema.
VERDICT_PASS = "pass"
VERDICT_FAIL = "fail"
VERDICT_UNDECIDED = "undecided"


def finding_dict(finding: Any) -> Dict[str, Any]:
    """Normalize one finding (Violation, Race, LocksetWarning, …) to a dict.

    Dataclasses serialize field-by-field; anything else falls back to a
    ``{"details": str(finding)}`` record so exotic plugin findings never
    break the schema.
    """
    if is_dataclass(finding) and not isinstance(finding, type):
        return asdict(finding)
    return {"details": str(finding)}


@dataclass
class Report:
    """One analysis's outcome over one trace ingest.

    Attributes:
        analysis: Registry name of the analysis (``"aerodrome"``,
            ``"races"``, …).
        kind: Family tag (``"checker"``, ``"races"``, ``"lockset"``, …).
        mode: Run mode the analysis executed under (``"stop_first"``,
            ``"report_all"``, ``"sample"``, or ``"offline"`` for
            whole-trace analyses).
        verdict: ``True`` = clean/pass, ``False`` = findings, ``None`` =
            undecided (e.g. view serializability over the search bound).
        violations: Normalized finding dicts, in detection order.
        payload: Analysis-specific JSON-able detail.
        events_processed: Events this analysis consumed.
        summary: One human-readable line for multi-analysis CLI output.
        native: The analysis's own result object (``CheckResult``,
            ``List[Race]``, ``TraceProfile``, …) — not serialized, but
            byte-identical to what the standalone entrypoint returns.
    """

    analysis: str
    kind: str
    mode: str
    verdict: Optional[bool]
    violations: List[Dict[str, Any]] = field(default_factory=list)
    payload: Dict[str, Any] = field(default_factory=dict)
    events_processed: int = 0
    summary: str = ""
    native: Any = None

    @property
    def ok(self) -> bool:
        """True iff the verdict is a clean pass."""
        return self.verdict is True

    @property
    def verdict_label(self) -> str:
        if self.verdict is None:
            return VERDICT_UNDECIDED
        return VERDICT_PASS if self.verdict else VERDICT_FAIL

    def to_json(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "kind": self.kind,
            "mode": self.mode,
            "verdict": self.verdict_label,
            "events_processed": self.events_processed,
            "violations": self.violations,
            "payload": self.payload,
            "summary": self.summary,
        }


@dataclass
class SessionResult:
    """Outcome of one :meth:`Session.run` — every report plus timing.

    Attributes:
        trace_name: Name of the analyzed trace.
        events: Total events in the trace (``None`` for bare iterables
            of unknown length).
        events_swept: Events the shared sweep actually visited (the
            sweep stops early once every analysis is done).
        packed: Whether the packed integer fast path drove the sweep.
        seconds: Wall-clock time of the whole session.
        reports: Per-analysis reports, keyed by analysis name in
            session order.
        path: Source file of the trace, when loaded from disk.
    """

    trace_name: str
    events: Optional[int]
    events_swept: int
    packed: bool
    seconds: float
    reports: Dict[str, Report] = field(default_factory=dict)
    path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff every analysis passed cleanly."""
        return all(report.ok for report in self.reports.values())

    @property
    def verdict_label(self) -> str:
        """Three-valued session verdict: any fail > any undecided > pass."""
        verdicts = [report.verdict for report in self.reports.values()]
        if any(v is False for v in verdicts):
            return VERDICT_FAIL
        if any(v is None for v in verdicts):
            return VERDICT_UNDECIDED
        return VERDICT_PASS

    @property
    def events_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.events_swept / self.seconds

    def report(self, analysis: str) -> Report:
        return self.reports[analysis]

    def __getitem__(self, analysis: str) -> Report:
        return self.reports[analysis]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "trace": {
                "name": self.trace_name,
                "path": self.path,
                "events": self.events,
                "packed": self.packed,
            },
            "timing": {
                "seconds": self.seconds,
                "events_swept": self.events_swept,
                # The property's inf (sub-resolution run) is not JSON.
                "events_per_second": (
                    None
                    if self.seconds <= 0
                    else self.events_per_second
                ),
            },
            "verdict": self.verdict_label,
            "analyses": [report.to_json() for report in self.reports.values()],
        }

    def __str__(self) -> str:
        lines = [
            f"session over {self.trace_name!r}: "
            f"{len(self.reports)} analyses, {self.events_swept} events, "
            f"{self.seconds:.3f}s"
        ]
        for report in self.reports.values():
            lines.append(f"  [{report.analysis}] {report.summary}")
        return "\n".join(lines)


#: Verdict label -> three-valued verdict, the inverse of ``verdict_label``.
_VERDICT_OF_LABEL = {VERDICT_PASS: True, VERDICT_FAIL: False, VERDICT_UNDECIDED: None}


def report_from_json(data: Mapping[str, Any]) -> Report:
    """Rebuild a :class:`Report` from its ``to_json()`` dict.

    The wire form the process-parallel executor ships between workers
    (:mod:`repro.api.parallel`): everything the schema carries survives
    the round trip; only ``native`` — the analysis's in-memory result
    object, which is not part of the schema — comes back as ``None``.
    Raises ``ValueError`` on unknown verdict labels or missing keys.
    """
    try:
        verdict = _VERDICT_OF_LABEL[data["verdict"]]
        return Report(
            analysis=data["analysis"],
            kind=data["kind"],
            mode=data["mode"],
            verdict=verdict,
            violations=list(data["violations"]),
            payload=dict(data["payload"]),
            events_processed=data["events_processed"],
            summary=data.get("summary", ""),
            native=None,
        )
    except KeyError as error:
        raise ValueError(
            f"invalid serialized report: missing or unknown {error}"
        ) from error


_VERDICTS = {VERDICT_PASS, VERDICT_FAIL, VERDICT_UNDECIDED}


def validate_report(data: Mapping[str, Any]) -> None:
    """Check ``data`` against the ``repro-report/1`` schema.

    Raises:
        ValueError: On any missing key, wrong type or unknown verdict.
            Silence means the document is well-formed.
    """

    def fail(message: str) -> None:
        raise ValueError(f"invalid repro-report/1 document: {message}")

    if not isinstance(data, Mapping):
        fail(f"expected an object, got {type(data).__name__}")
    if data.get("schema") != SCHEMA:
        fail(f"schema is {data.get('schema')!r}, expected {SCHEMA!r}")
    trace = data.get("trace")
    if not isinstance(trace, Mapping) or "name" not in trace or "events" not in trace:
        fail("trace block must carry name and events")
    timing = data.get("timing")
    if not isinstance(timing, Mapping) or not isinstance(
        timing.get("seconds"), (int, float)
    ):
        fail("timing block must carry numeric seconds")
    if data.get("verdict") not in _VERDICTS:
        fail(f"session verdict {data.get('verdict')!r} not in {sorted(_VERDICTS)}")
    analyses = data.get("analyses")
    if not isinstance(analyses, list):
        fail("analyses must be a list")
    for entry in analyses:
        if not isinstance(entry, Mapping):
            fail("each analysis entry must be an object")
        for key in ("analysis", "kind", "mode", "verdict", "violations", "payload"):
            if key not in entry:
                fail(f"analysis entry missing {key!r}")
        if entry["verdict"] not in _VERDICTS:
            fail(f"analysis verdict {entry['verdict']!r} unknown")
        if not isinstance(entry["violations"], list):
            fail("violations must be a list")
        if not isinstance(entry["payload"], Mapping):
            fail("payload must be an object")
