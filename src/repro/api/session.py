"""The one-pass analysis session: ingest a trace once, run everything.

A :class:`Session` takes one trace — a string-event
:class:`~repro.trace.trace.Trace`, a compiled
:class:`~repro.trace.packed.PackedTrace`, or any event iterable — and
any number of analyses (instances, or registry names resolved through
:mod:`repro.api.registry`), then drives them all over a **single**
event sweep:

* on the packed path, checker analyses step through their per-op
  dispatch tables over the shared integer arrays (the trace's interners
  are compiled once and shared by construction), while event-based
  analyses receive each reconstructed event exactly once, shared among
  all of them;
* on the string path, every analysis steps on the same event object;
* an analysis that declares itself ``finished`` (a stop-first checker
  after its violation, a limited report-all run) drops out of the
  sweep, and the sweep stops early once every analysis is done.

When the session holds exactly one stop-first checker, it delegates to
the checker's own (possibly inlined) ``run``/``run_packed`` hot loop —
so the ``check_trace`` facade loses nothing by routing through here.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..trace.events import Event
from ..trace.packed import PackedTrace
from .analysis import Analysis, CheckerAnalysis, TraceMeta
from .report import Report, SessionResult


class Session:
    """One trace ingest driving any number of registered analyses.

    Args:
        trace: The events to analyze — ``Trace``, ``PackedTrace`` or any
            iterable of events. A ``PackedTrace`` selects the packed
            dispatch sweep automatically.
        analyses: Analysis instances or registry names (strings). A
            fresh instance is created for each name; instances are used
            as-is and must be fresh (single-use).
        name: Override the trace name in reports.
        path: Source file path recorded in the JSON report.
    """

    def __init__(
        self,
        trace: Union[Iterable[Event], PackedTrace],
        analyses: Sequence[Union[str, Analysis]],
        name: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        if not analyses:
            raise ValueError("a session needs at least one analysis")
        from .registry import create_analysis

        self.trace = trace
        self.path = path
        self.analyses: List[Analysis] = [
            create_analysis(a) if isinstance(a, str) else a for a in analyses
        ]
        self.name = name or getattr(trace, "name", "trace")
        self._result: Optional[SessionResult] = None

    # -- driving -----------------------------------------------------------

    def run(self, jobs: int = 1) -> SessionResult:
        """Sweep the trace once and finish every analysis.

        Args:
            jobs: With the default ``1``, everything runs in-process on
                the existing (possibly inlined) hot loops. With ``2+``
                (or ``0`` = one per CPU), the analyses are fanned across
                worker processes by :class:`repro.api.parallel.
                ParallelExecutor` — under ``fork`` the trace columns are
                inherited zero-copy — and the per-worker reports are
                merged back into one :class:`SessionResult` (identical
                up to ``native``, which does not cross the process
                boundary). A session that cannot run in parallel (a
                single analysis, a one-shot iterator trace, unpicklable
                state under ``spawn``) silently degrades to the serial
                sweep.
        """
        if self._result is not None:
            raise RuntimeError("session already ran; sessions are single-use")
        if jobs != 1:
            result = self._run_parallel(jobs)
            if result is not None:
                self._result = result
                return result
        trace = self.trace
        packed = isinstance(trace, PackedTrace)
        try:
            total: Optional[int] = len(trace)  # type: ignore[arg-type]
        except TypeError:
            total = None
        meta = TraceMeta(
            name=self.name,
            events=total,
            packed=packed,
            source=trace if total is not None else None,
        )
        start = time.perf_counter()
        for analysis in self.analyses:
            analysis.begin(meta)
        solo = self._solo_checker()
        if solo is not None:
            solo.run_solo(trace)
            swept = solo.checker.events_processed
        elif packed:
            swept = self._sweep_packed(trace)
        else:
            swept = self._sweep_string(trace)
        reports: Dict[str, Report] = {}
        for analysis in self.analyses:
            report = analysis.finish()
            key = report.analysis
            serial = 2
            while key in reports:  # same analysis twice in one session
                key = f"{report.analysis}#{serial}"
                serial += 1
            reports[key] = report
        self._result = SessionResult(
            trace_name=self.name,
            events=total,
            events_swept=swept,
            packed=packed,
            seconds=time.perf_counter() - start,
            reports=reports,
            path=self.path,
        )
        return self._result

    def _run_parallel(self, jobs: int) -> Optional[SessionResult]:
        """Try the process-parallel executor; None = use the serial sweep.

        Not every session parallelizes: one analysis has nothing to fan
        out, and a bare iterator trace cannot be swept twice. Worker
        failures (e.g. unpicklable analyses under ``spawn``) degrade to
        the serial path with a warning rather than failing the run.
        """
        if len(self.analyses) < 2:
            return None
        try:
            len(self.trace)  # type: ignore[arg-type]
        except TypeError:
            return None  # one-shot iterator: only one sweep exists
        from .parallel import ParallelExecutionError, ParallelExecutor

        executor = ParallelExecutor(jobs=None if jobs == 0 else jobs)
        if executor.jobs < 2:
            return None
        try:
            return executor.run_session(self)
        except ParallelExecutionError as error:
            import warnings

            warnings.warn(
                f"parallel session degraded to serial: {error}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def _solo_checker(self) -> Optional[CheckerAnalysis]:
        """The lone stop-first checker, when its own hot loop applies."""
        if len(self.analyses) != 1:
            return None
        only = self.analyses[0]
        if isinstance(only, CheckerAnalysis) and only.can_run_solo():
            return only
        return None

    def _sweep_string(self, events: Iterable[Event]) -> int:
        # Analyses may finish at begin() (offline passes holding the
        # whole source already) — they need no sweep at all.
        live = [(a, a.step) for a in self.analyses if not a.finished]
        if not live:
            return 0
        swept = 0
        for event in events:
            swept += 1
            finished = False
            for analysis, step in live:
                step(event)
                finished = finished or analysis.finished
            if finished:
                live = [(a, s) for a, s in live if not a.finished]
                if not live:
                    break
        return swept

    def _sweep_packed(self, packed: PackedTrace) -> int:
        threads, ops, targets = packed.arrays()
        n = len(ops)
        event_at = packed.event_at
        packed_live = []
        event_live = []
        for analysis in self.analyses:
            if analysis.finished:  # done at begin(): nothing to feed
                continue
            bound = analysis.bind_packed(packed)
            if bound is None:
                event_live.append((analysis, analysis.step))
            else:
                packed_live.append((analysis, bound))
        if not packed_live and not event_live:
            return 0
        swept = 0
        for i in range(n):
            swept += 1
            op = ops[i]
            t = threads[i]
            target = targets[i]
            finished = False
            for analysis, step in packed_live:
                step(op, t, target, i)
                finished = finished or analysis.finished
            if event_live:
                event = event_at(i)  # one shared reconstruction per index
                for analysis, step in event_live:
                    step(event)
                    finished = finished or analysis.finished
            if finished:
                packed_live = [(a, s) for a, s in packed_live if not a.finished]
                event_live = [(a, s) for a, s in event_live if not a.finished]
                if not packed_live and not event_live:
                    break
        return swept

    @property
    def result(self) -> Optional[SessionResult]:
        return self._result


def run(
    trace: Union[Iterable[Event], PackedTrace],
    analyses: Sequence[Union[str, Analysis]],
    name: Optional[str] = None,
    path: Optional[str] = None,
    jobs: int = 1,
) -> SessionResult:
    """One-shot convenience: ``Session(trace, analyses).run(jobs=jobs)``."""
    return Session(trace, analyses, name=name, path=path).run(jobs=jobs)


def check(
    events: Union[Iterable[Event], PackedTrace],
    algorithm: str = "aerodrome",
    raise_on_violation: bool = False,
):
    """Check a trace for atomicity violations — the session-era front door.

    Drop-in successor of :func:`repro.core.checker.check_trace` (which
    now delegates here): same arguments, same
    :class:`~repro.core.violations.CheckResult` return, same
    :class:`~repro.core.violations.AtomicityViolationError` behavior —
    routed through a single-analysis :class:`Session`, which delegates
    to the checker's own hot loop.
    """
    from ..core.violations import AtomicityViolationError

    analysis = CheckerAnalysis(algorithm)
    result = Session(events, [analysis]).run()
    check_result = result.reports[algorithm].native
    if raise_on_violation and check_result.violation is not None:
        raise AtomicityViolationError(check_result.violation)
    return check_result
