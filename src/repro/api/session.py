"""The one-pass analysis session: ingest a trace once, run everything.

A :class:`Session` takes one trace — a string-event
:class:`~repro.trace.trace.Trace`, a compiled
:class:`~repro.trace.packed.PackedTrace`, or any event iterable — and
any number of analyses (instances, or registry names resolved through
:mod:`repro.api.registry`), then drives them all over a **single**
event sweep:

* on the packed path, checker analyses step through their per-op
  dispatch tables over the shared integer arrays (the trace's interners
  are compiled once and shared by construction), while event-based
  analyses receive each reconstructed event exactly once, shared among
  all of them;
* on the string path, every analysis steps on the same event object;
* an analysis that declares itself ``finished`` (a stop-first checker
  after its violation, a limited report-all run) drops out of the
  sweep, and the sweep stops early once every analysis is done.

When the session holds exactly one stop-first checker, it delegates to
the checker's own (possibly inlined) ``run``/``run_packed`` hot loop —
so the ``check_trace`` facade loses nothing by routing through here.

Sessions can also run **incrementally**: construct one with
``trace=None`` and push events as they arrive with :meth:`Session.feed`
(any number of calls, any batch sizes), then :meth:`Session.finish` to
collect the reports. ``run()`` is exactly feed-everything-then-finish,
so the two lifecycles produce identical reports — the agreement the
streaming service (:mod:`repro.service`) is built on and
``tests/test_api_feed.py`` property-tests for every registered
analysis. A mid-stream session is picklable (its state is the analyses'
state plus counters), which is what service checkpoints ride.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..faults.injector import fire
from ..faults.plan import FaultInjected
from ..trace.events import Event, Op
from ..trace.packed import PackedTrace
from .analysis import Analysis, CheckerAnalysis, TraceMeta
from .report import Report, SessionResult


class Session:
    """One trace ingest driving any number of registered analyses.

    Args:
        trace: The events to analyze — ``Trace``, ``PackedTrace`` or any
            iterable of events. A ``PackedTrace`` selects the packed
            dispatch sweep automatically. Pass ``None`` for a streaming
            session driven by :meth:`feed`/:meth:`finish` instead of
            :meth:`run`.
        analyses: Analysis instances or registry names (strings). A
            fresh instance is created for each name; instances are used
            as-is and must be fresh (single-use).
        name: Override the trace name in reports.
        path: Source file path recorded in the JSON report.
    """

    def __init__(
        self,
        trace: Union[Iterable[Event], PackedTrace, None],
        analyses: Sequence[Union[str, Analysis]],
        name: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        if not analyses:
            raise ValueError("a session needs at least one analysis")
        from .registry import create_analysis

        self.trace = trace
        self.path = path
        self.analyses: List[Analysis] = [
            create_analysis(a) if isinstance(a, str) else a for a in analyses
        ]
        self.name = name or getattr(trace, "name", None) or "trace"
        self._result: Optional[SessionResult] = None
        # -- incremental (feed/finish) state ------------------------------
        self._started = False
        self._mode: Optional[str] = None  # "string" | "packed"
        self._meta: Optional[TraceMeta] = None
        self._t0: Optional[float] = None
        self._elapsed = 0.0  # seconds accumulated before a checkpoint
        self._swept = 0
        self._string_live: List[tuple] = []
        self._packed_live: List[tuple] = []
        self._event_live: List[tuple] = []
        self._store: Optional[PackedTrace] = None
        self._offset = 0  # next unswept index into the packed store

    # -- one-shot driving --------------------------------------------------

    def run(self, jobs: int = 1) -> SessionResult:
        """Sweep the trace once and finish every analysis.

        Exactly equivalent to feeding the whole trace with :meth:`feed`
        and calling :meth:`finish` — the one-shot form additionally
        knows the trace up front, so whole-trace analyses can skip
        buffering and the lone-stop-first-checker fast path applies.

        Args:
            jobs: With the default ``1``, everything runs in-process on
                the existing (possibly inlined) hot loops. With ``2+``
                (or ``0`` = one per CPU), the analyses are fanned across
                worker processes by :class:`repro.api.parallel.
                ParallelExecutor` — under ``fork`` the trace columns are
                inherited zero-copy — and the per-worker reports are
                merged back into one :class:`SessionResult` (identical
                up to ``native``, which does not cross the process
                boundary). A session that cannot run in parallel (a
                single analysis, a one-shot iterator trace, unpicklable
                state under ``spawn``) silently degrades to the serial
                sweep.
        """
        if self._result is not None:
            raise RuntimeError("session already ran; sessions are single-use")
        if self._started:
            raise RuntimeError(
                "session is streaming (feed() was called); use finish()"
            )
        if self.trace is None:
            raise ValueError(
                "session has no trace; stream events with feed()/finish()"
            )
        if jobs != 1:
            result = self._run_parallel(jobs)
            if result is not None:
                self._result = result
                return result
        trace = self.trace
        packed = isinstance(trace, PackedTrace)
        try:
            total: Optional[int] = len(trace)  # type: ignore[arg-type]
        except TypeError:
            total = None
        meta = TraceMeta(
            name=self.name,
            events=total,
            packed=packed,
            source=trace if total is not None else None,
        )
        self._begin(meta, packed=packed)
        solo = self._solo_checker()
        if solo is not None:
            solo.run_solo(trace)
            self._swept = solo.checker.events_processed
        elif packed:
            self._bind_packed(trace)
            self._pump_packed(len(trace))
        else:
            self._string_live = [
                (a, a.step) for a in self.analyses if not a.finished
            ]
            self._pump_string(trace)
        return self.finish()

    def _run_parallel(self, jobs: int) -> Optional[SessionResult]:
        """Try the process-parallel executor; None = use the serial sweep.

        Not every session parallelizes: one analysis has nothing to fan
        out, and a bare iterator trace cannot be swept twice. Worker
        failures (e.g. unpicklable analyses under ``spawn``) degrade to
        the serial path with a warning rather than failing the run.
        """
        if len(self.analyses) < 2:
            return None
        try:
            len(self.trace)  # type: ignore[arg-type]
        except TypeError:
            return None  # one-shot iterator: only one sweep exists
        from .parallel import ParallelExecutionError, ParallelExecutor

        executor = ParallelExecutor(jobs=None if jobs == 0 else jobs)
        if executor.jobs < 2:
            return None
        try:
            return executor.run_session(self)
        except ParallelExecutionError as error:
            import warnings

            warnings.warn(
                f"parallel session degraded to serial: {error}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def _solo_checker(self) -> Optional[CheckerAnalysis]:
        """The lone stop-first checker, when its own hot loop applies."""
        if len(self.analyses) != 1:
            return None
        only = self.analyses[0]
        if isinstance(only, CheckerAnalysis) and only.can_run_solo():
            return only
        return None

    # -- incremental driving -----------------------------------------------

    def feed(self, events: Union[Iterable[Event], PackedTrace],
             packed: Optional[bool] = None) -> int:
        """Push one batch of events through every live analysis.

        The incremental half of the session lifecycle: any number of
        ``feed`` calls followed by one :meth:`finish` produces reports
        identical to a one-shot :meth:`run` over the concatenation.

        The first call fixes the sweep mode:

        * **string mode** (an event iterable, and ``packed`` falsy) —
          each batch's events are stepped directly. Events should carry
          their global stream position in ``idx`` (a
          :class:`~repro.trace.trace.Trace` stamps it; the streaming
          service stamps parsed wire events) so violation indices match
          the offline run.
        * **packed mode** (a :class:`~repro.trace.packed.PackedTrace`
          batch, or ``packed=True``) — the session keeps a growing
          packed store; the first ``PackedTrace`` batch is adopted as
          that store (and grows in place), later batches are appended
          (zero re-hash when they share the store's interner tables,
          e.g. slices of one source trace). Event iterables are
          interned into the store directly. Analyses bind their packed
          dispatch once; interner growth mid-stream is supported.

        Returns:
            The number of events actually swept by this call — less
            than the batch size once every analysis has finished.
        """
        if self._result is not None:
            raise RuntimeError("session already finished")
        action = fire("analysis.step", key=self.name)
        if action is not None and action.op == "raise":
            raise FaultInjected(
                f"[injected] analysis step raised in session {self.name!r}"
            )
        is_packed_chunk = isinstance(events, PackedTrace)
        if not self._started:
            mode_packed = is_packed_chunk or bool(packed)
            self._begin(
                TraceMeta(
                    name=self.name, events=None,
                    packed=mode_packed, source=None,
                ),
                packed=mode_packed,
            )
            if mode_packed:
                # The first PackedTrace batch is adopted as the store;
                # event batches fall through to the shared append path.
                store = events if is_packed_chunk else PackedTrace(self.name)
                self._bind_packed(store)
            else:
                self._string_live = [
                    (a, a.step) for a in self.analyses if not a.finished
                ]
                return self._feed_string(events)
        before = self._swept
        if self._mode == "packed":
            store = self._store
            if is_packed_chunk:
                if events is not store:
                    store.extend_from(events)
            else:
                self._append_events(events)
            self._pump_packed(len(store))
        else:
            if is_packed_chunk:
                raise ValueError(
                    "session is sweeping in string mode; feed event "
                    "iterables (or start with a PackedTrace batch)"
                )
            return self._feed_string(events)
        return self._swept - before

    def _feed_string(self, events: Iterable[Event]) -> int:
        before = self._swept
        self._pump_string(events)
        return self._swept - before

    def finish(self) -> SessionResult:
        """Finish every analysis and assemble the :class:`SessionResult`.

        Ends both lifecycles: ``run()`` calls it internally, streaming
        callers call it after their last :meth:`feed`.
        """
        if self._result is not None:
            raise RuntimeError("session already finished")
        if not self._started:
            # finish() with no events: an empty stream.
            self._begin(
                TraceMeta(name=self.name, events=None,
                          packed=False, source=None),
                packed=False,
            )
        reports: Dict[str, Report] = {}
        for analysis in self.analyses:
            report = analysis.finish()
            key = report.analysis
            serial = 2
            while key in reports:  # same analysis twice in one session
                key = f"{report.analysis}#{serial}"
                serial += 1
            reports[key] = report
        self._result = SessionResult(
            trace_name=self.name,
            events=self._meta.events,
            events_swept=self._swept,
            packed=self._mode == "packed",
            seconds=self._elapsed + (time.perf_counter() - self._t0),
            reports=reports,
            path=self.path,
        )
        return self._result

    @property
    def started(self) -> bool:
        """Whether the session has begun sweeping (run or first feed)."""
        return self._started

    @property
    def events_swept(self) -> int:
        """Events visited by the sweep so far (stops growing once every
        analysis has finished)."""
        return self._swept

    # -- sweep machinery ---------------------------------------------------

    def _begin(self, meta: TraceMeta, packed: bool) -> None:
        self._started = True
        self._mode = "packed" if packed else "string"
        self._meta = meta
        self._t0 = time.perf_counter()
        for analysis in self.analyses:
            analysis.begin(meta)

    def _bind_packed(self, store: PackedTrace) -> None:
        """Bind every analysis to the packed store (once per session)."""
        self._store = store
        packed_live: List[tuple] = []
        event_live: List[tuple] = []
        for analysis in self.analyses:
            if analysis.finished:  # done at begin(): nothing to feed
                continue
            bound = analysis.bind_packed(store)
            if bound is None:
                event_live.append((analysis, analysis.step))
            else:
                packed_live.append((analysis, bound))
        self._packed_live = packed_live
        self._event_live = event_live

    def _append_events(self, events: Iterable[Event]) -> None:
        append = self._store.append
        for event in events:
            append(event)

    def _pump_string(self, events: Iterable[Event]) -> None:
        # Analyses may finish at begin() (offline passes holding the
        # whole source already) — they need no sweep at all.
        live = self._string_live
        if not live:
            return
        swept = self._swept
        for event in events:
            swept += 1
            finished = False
            for analysis, step in live:
                step(event)
                finished = finished or analysis.finished
            if finished:
                live = [(a, s) for a, s in live if not a.finished]
                if not live:
                    break
        self._string_live = live
        self._swept = swept

    def _pump_packed(self, stop: int) -> None:
        """Sweep the packed store's indices ``[self._offset, stop)``."""
        packed_live = self._packed_live
        event_live = self._event_live
        if not packed_live and not event_live:
            self._offset = stop
            return
        store = self._store
        threads, ops, targets = store.arrays()
        thread_name = store.threads.name_of
        target_name = store.target_name
        i = self._offset
        swept = self._swept
        while i < stop:
            swept += 1
            op = ops[i]
            t = threads[i]
            target = targets[i]
            finished = False
            for analysis, step in packed_live:
                step(op, t, target, i)
                finished = finished or analysis.finished
            if event_live:
                # one shared reconstruction per index, global idx
                event = Event(thread_name(t), Op(op), target_name(i), idx=i)
                for analysis, step in event_live:
                    step(event)
                    finished = finished or analysis.finished
            i += 1
            if finished:
                packed_live = [
                    (a, s) for a, s in packed_live if not a.finished
                ]
                event_live = [(a, s) for a, s in event_live if not a.finished]
                if not packed_live and not event_live:
                    break
        self._packed_live = packed_live
        self._event_live = event_live
        self._offset = i
        self._swept = swept

    # -- checkpointing -----------------------------------------------------

    def __getstate__(self):
        # The live lists hold bound dispatch closures — rebuilt on
        # restore from the analyses' own state, never pickled.
        state = self.__dict__.copy()
        if self._t0 is not None:
            state["_elapsed"] = self._elapsed + (
                time.perf_counter() - self._t0
            )
        state["_t0"] = None
        state["_string_live"] = []
        state["_packed_live"] = []
        state["_event_live"] = []
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._started and self._result is None:
            self._t0 = time.perf_counter()
            self._rebind()

    def _rebind(self) -> None:
        """Rebuild the live dispatch lists after a checkpoint restore."""
        if self._mode == "packed":
            self._bind_packed(self._store)
        else:
            self._string_live = [
                (a, a.step) for a in self.analyses if not a.finished
            ]

    @property
    def result(self) -> Optional[SessionResult]:
        return self._result


def run(
    trace: Union[Iterable[Event], PackedTrace],
    analyses: Sequence[Union[str, Analysis]],
    name: Optional[str] = None,
    path: Optional[str] = None,
    jobs: int = 1,
) -> SessionResult:
    """One-shot convenience: ``Session(trace, analyses).run(jobs=jobs)``."""
    return Session(trace, analyses, name=name, path=path).run(jobs=jobs)


def check(
    events: Union[Iterable[Event], PackedTrace],
    algorithm: str = "aerodrome",
    raise_on_violation: bool = False,
):
    """Check a trace for atomicity violations — the session-era front door.

    Drop-in successor of :func:`repro.core.checker.check_trace` (which
    now delegates here): same arguments, same
    :class:`~repro.core.violations.CheckResult` return, same
    :class:`~repro.core.violations.AtomicityViolationError` behavior —
    routed through a single-analysis :class:`Session`, which delegates
    to the checker's own hot loop.
    """
    from ..core.violations import AtomicityViolationError

    analysis = CheckerAnalysis(algorithm)
    result = Session(events, [analysis]).run()
    check_result = result.reports[algorithm].native
    if raise_on_violation and check_result.violation is not None:
        raise AtomicityViolationError(check_result.violation)
    return check_result
