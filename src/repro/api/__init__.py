"""``repro.api`` — the unified analysis-session front door.

One trace ingest, any number of analyses, one structured report::

    from repro.api import run

    result = run(trace, ["aerodrome", "races", "lockset", "profile"])
    print(result.reports["aerodrome"].summary)
    print(json.dumps(result.to_json()))      # repro-report/1

See ``docs/API.md`` for the Session lifecycle, the ``Analysis``
protocol, the JSON schema and the migration table from the old
per-analysis entrypoints.
"""

from .analysis import (
    Analysis,
    CausalAnalysis,
    CheckerAnalysis,
    ExplainAnalysis,
    LocksetAnalysis,
    ProfileAnalysis,
    RacesAnalysis,
    TraceMeta,
    ViewSerialAnalysis,
)
from .registry import (
    AnalysisSpec,
    available_analyses,
    analysis_specs,
    checker_names,
    create_analysis,
    make_checker,
    register_analysis,
    unregister_analysis,
)
from .report import (
    SCHEMA,
    Report,
    SessionResult,
    validate_report,
)
from .session import Session, check, run

__all__ = [
    "SCHEMA",
    "Analysis",
    "AnalysisSpec",
    "CausalAnalysis",
    "CheckerAnalysis",
    "ExplainAnalysis",
    "LocksetAnalysis",
    "ProfileAnalysis",
    "RacesAnalysis",
    "Report",
    "Session",
    "SessionResult",
    "TraceMeta",
    "ViewSerialAnalysis",
    "available_analyses",
    "analysis_specs",
    "check",
    "checker_names",
    "create_analysis",
    "make_checker",
    "register_analysis",
    "run",
    "unregister_analysis",
    "validate_report",
]
