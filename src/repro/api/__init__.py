"""``repro.api`` — the unified analysis-session front door.

One trace ingest, any number of analyses, one structured report::

    from repro.api import run

    result = run(trace, ["aerodrome", "races", "lockset", "profile"])
    print(result.reports["aerodrome"].summary)
    print(json.dumps(result.to_json()))      # repro-report/1

See ``docs/API.md`` for the Session lifecycle, the ``Analysis``
protocol, the JSON schema and the migration table from the old
per-analysis entrypoints.
"""

from .analysis import (
    Analysis,
    CausalAnalysis,
    CheckerAnalysis,
    ExplainAnalysis,
    LocksetAnalysis,
    ProfileAnalysis,
    RacesAnalysis,
    TraceMeta,
    ViewSerialAnalysis,
)
from .registry import (
    AnalysisSpec,
    available_analyses,
    analysis_specs,
    checker_names,
    create_analysis,
    make_checker,
    register_analysis,
    unregister_analysis,
)
from .report import (
    SCHEMA,
    Report,
    SessionResult,
    report_from_json,
    validate_report,
)
from .session import Session, check, run

#: Re-exported lazily (PEP 562): ``Session.run(jobs=1)`` must never pay
#: the multiprocessing import, so ``repro.api.parallel`` only loads when
#: one of these names (or a parallel run) is actually used.
_PARALLEL_EXPORTS = frozenset(
    {"ParallelExecutionError", "ParallelExecutor", "default_jobs"}
)


def __getattr__(name):
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SCHEMA",
    "Analysis",
    "AnalysisSpec",
    "CausalAnalysis",
    "CheckerAnalysis",
    "ExplainAnalysis",
    "LocksetAnalysis",
    "ParallelExecutionError",
    "ParallelExecutor",
    "ProfileAnalysis",
    "RacesAnalysis",
    "Report",
    "report_from_json",
    "default_jobs",
    "Session",
    "SessionResult",
    "TraceMeta",
    "ViewSerialAnalysis",
    "available_analyses",
    "analysis_specs",
    "check",
    "checker_names",
    "create_analysis",
    "make_checker",
    "register_analysis",
    "run",
    "unregister_analysis",
    "validate_report",
]
