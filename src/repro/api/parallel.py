"""Process-parallel session execution.

A :class:`~repro.api.session.Session` co-runs its analyses on one sweep
— but the sweep itself lived on one core. This module fans the analyses
across ``multiprocessing`` workers:

* the trace is **not copied** on POSIX: workers are forked, so the
  packed columns — and, for a :class:`~repro.trace.packed_io.
  MappedPackedTrace`, the ``mmap``-ed file pages themselves — are
  inherited zero-copy (shared physical memory, copy-on-write that never
  gets written);
* each worker drives an ordinary sub-:class:`Session` over its share of
  the analyses and ships back the ``repro-report/1`` dicts of its
  reports — always picklable, however exotic the analysis's in-memory
  state is;
* the parent merges them into one :class:`~repro.api.report.
  SessionResult` in the original analysis order. Reports rebuilt from
  the wire carry ``native=None`` (the schema doesn't serialize native
  result objects); everything else — verdicts, violations, payloads,
  events processed, summaries — is identical to a serial run.

``Session.run(jobs=N)`` is the front door; ``jobs=1`` never imports
this module and keeps the serial hot loop byte-for-byte. On platforms
without ``fork`` (Windows, macOS spawn default) the trace and analyses
must be picklable; when they are not, the executor raises
:class:`ParallelExecutionError` and ``Session.run`` falls back to the
serial sweep with a warning (see docs/API.md, "Parallel execution").

:meth:`ParallelExecutor.map` is the generic building block the bench
harness uses to fan whole workloads (generate + time a benchmark row)
across cores.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .report import Report, report_from_json

__all__ = [
    "ParallelExecutionError",
    "ParallelExecutor",
    "default_jobs",
    "partition_analyses",
]


class ParallelExecutionError(RuntimeError):
    """A parallel run could not start or a worker died."""


def default_jobs() -> int:
    """A sensible worker count: the CPU count (at least 1)."""
    return os.cpu_count() or 1


def _pick_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork shares the trace (and any mmap) zero-copy; fall back to the
    # platform default (spawn on Windows/macOS) where it doesn't exist.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - no fork on this platform
        return multiprocessing.get_context()


#: Relative sweep cost by analysis shape, for balanced partitioning:
#: packed-dispatch checkers are cheap, event-object analyses pay the
#: shared reconstruction plus their own dict work, offline passes run
#: whole-trace algorithms at finish().
_WEIGHT_CHECKER = 2
_WEIGHT_EVENT = 3
_WEIGHT_OFFLINE = 2


def _analysis_weight(analysis: Any) -> int:
    from .analysis import BufferedAnalysis, CheckerAnalysis

    if isinstance(analysis, CheckerAnalysis):
        return _WEIGHT_CHECKER
    if isinstance(analysis, BufferedAnalysis):
        return _WEIGHT_OFFLINE
    return _WEIGHT_EVENT


def partition_analyses(
    analyses: Sequence[Any], jobs: int
) -> List[List[int]]:
    """Split analysis *indices* into at most ``jobs`` balanced chunks.

    Greedy longest-processing-time: heaviest analyses first, each onto
    the currently lightest chunk. Returns chunks of indices into
    ``analyses`` (every chunk non-empty, original order within a chunk
    preserved so per-chunk report order is deterministic).
    """
    jobs = max(1, min(jobs, len(analyses)))
    order = sorted(
        range(len(analyses)),
        key=lambda i: (-_analysis_weight(analyses[i]), i),
    )
    loads = [0] * jobs
    chunks: List[List[int]] = [[] for _ in range(jobs)]
    for index in order:
        lightest = loads.index(min(loads))
        chunks[lightest].append(index)
        loads[lightest] += _analysis_weight(analyses[index])
    for chunk in chunks:
        chunk.sort()
    return [chunk for chunk in chunks if chunk]


def _session_worker(
    trace: Any,
    analyses: Sequence[Any],
    name: str,
    path: Optional[str],
    indices: Sequence[int],
    conn,
) -> None:
    """Run one chunk in a worker process; ship repro-report/1 dicts back."""
    try:
        from .session import Session

        result = Session(trace, list(analyses), name=name, path=path).run()
        payload = {
            "indices": list(indices),
            "reports": [r.to_json() for r in result.reports.values()],
            "events_swept": result.events_swept,
        }
        conn.send(("ok", payload))
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _map_worker(fn: Callable, items: Sequence[Any], indices, conn) -> None:
    try:
        conn.send(("ok", (list(indices), [fn(item) for item in items])))
    except BaseException as error:  # noqa: BLE001
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:  # pragma: no cover
            pass
    finally:
        conn.close()


class ParallelExecutor:
    """Fans work across ``multiprocessing`` workers.

    Args:
        jobs: Worker count; ``None`` means :func:`default_jobs`.
        start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``;
            ``None`` prefers ``fork`` (zero-copy trace inheritance) and
            falls back to the platform default.
    """

    def __init__(
        self, jobs: Optional[int] = None, start_method: Optional[str] = None
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self._ctx = _pick_context(start_method)

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    # -- generic fan-out ----------------------------------------------------

    def _scatter_gather(
        self, worker: Callable, per_chunk_args: List[Tuple]
    ) -> List[Any]:
        """Start one process per chunk; collect one message from each."""
        procs = []
        try:
            for args in per_chunk_args:
                recv, send = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(
                    target=worker, args=args + (send,), daemon=True
                )
                try:
                    proc.start()
                except Exception as error:
                    raise ParallelExecutionError(
                        f"cannot start worker process: {error}"
                    ) from error
                finally:
                    send.close()  # parent keeps only the read end
                procs.append((proc, recv))
            payloads = []
            for proc, recv in procs:
                try:
                    status, payload = recv.recv()
                except EOFError:
                    proc.join()
                    raise ParallelExecutionError(
                        f"worker died without a result "
                        f"(exit code {proc.exitcode})"
                    ) from None
                if status != "ok":
                    raise ParallelExecutionError(f"worker failed: {payload}")
                payloads.append(payload)
            return payloads
        finally:
            for proc, recv in procs:
                recv.close()
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join()

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """``[fn(item) for item in items]`` across worker processes.

        Items are dealt round-robin into ``jobs`` chunks (one process
        per chunk); results come back in input order. ``fn`` runs in a
        child process, so side effects don't reach the parent, and the
        results must be picklable. With zero or one worker, or a single
        item, it degenerates to an in-process loop.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        chunks: List[List[int]] = [[] for _ in range(min(self.jobs, len(items)))]
        for i in range(len(items)):
            chunks[i % len(chunks)].append(i)
        payloads = self._scatter_gather(
            _map_worker,
            [(fn, [items[i] for i in chunk], chunk) for chunk in chunks],
        )
        results: List[Any] = [None] * len(items)
        for indices, values in payloads:
            for index, value in zip(indices, values):
                results[index] = value
        return results

    # -- session fan-out ----------------------------------------------------

    def run_session(self, session) -> "Any":
        """Fan ``session``'s analyses across workers; merge one result.

        Each chunk of analyses sweeps the (shared, zero-copy under
        ``fork``) trace in its own process. Returns the merged
        :class:`~repro.api.report.SessionResult`; reports keep the
        session's original analysis order and key-collision suffixes.
        """
        import time

        from ..trace.packed import PackedTrace
        from .report import SessionResult

        analyses = session.analyses
        chunks = partition_analyses(analyses, self.jobs)
        trace = session.trace
        start = time.perf_counter()
        payloads = self._scatter_gather(
            _session_worker,
            [
                (
                    trace,
                    [analyses[i] for i in chunk],
                    session.name,
                    session.path,
                    chunk,
                    # conn appended by _scatter_gather
                )
                for chunk in chunks
            ],
        )
        seconds = time.perf_counter() - start
        by_index: Dict[int, Report] = {}
        events_swept = 0
        for payload in payloads:
            events_swept = max(events_swept, payload["events_swept"])
            for index, data in zip(payload["indices"], payload["reports"]):
                by_index[index] = report_from_json(data)
        reports: Dict[str, Report] = {}
        for index in range(len(analyses)):
            report = by_index[index]
            key = report.analysis
            serial = 2
            while key in reports:  # same duplicate-name rule as serial runs
                key = f"{report.analysis}#{serial}"
                serial += 1
            reports[key] = report
        try:
            total: Optional[int] = len(trace)  # type: ignore[arg-type]
        except TypeError:
            total = None
        return SessionResult(
            trace_name=session.name,
            events=total,
            events_swept=events_swept,
            packed=isinstance(trace, PackedTrace),
            seconds=seconds,
            reports=reports,
            path=session.path,
        )
