"""The chaos drill matrix: seeded fault scenarios with pinned outcomes.

Each scenario arms a deterministic :class:`~repro.faults.plan.FaultPlan`
against a real in-process service (TCP server, shard router, checkpoint
spool) and drives a real client through the failure. Every scenario
must terminate in one of exactly two outcomes:

* ``recovered`` — the stream heals (reconnect + resume, shard restart,
  positioned re-send) and the final report **equals the offline run**
  on the same trace;
* ``degraded`` — the failure is surfaced as a *documented, typed*
  error (a quarantined session's ``analysis`` ERROR, a salvaged spool
  entry) while every healthy sibling still recovers.

Never a hang (every client runs under a deadline), never a corrupt
report, never a dead shard taking its tenants down silently. The
matrix runs in CI (``chaos-smoke``) with a fixed seed and gates on
these invariants — agreement and typed degradation — not wall-clock,
so it is deterministic on any machine.

``repro chaos`` is the CLI front end: ``--scenario``/``--list`` run
this matrix, ``--plan`` runs an arbitrary ``repro-faults/1`` JSON plan
through the generic drill.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .injector import injected
from .plan import FaultPlan

#: Deadline (seconds) under which every drill's client runs — the
#: structural "never a hang" guarantee. Generous: it only matters if a
#: scenario would otherwise block forever.
DRILL_DEADLINE = 120.0

_ANALYSES = ["aerodrome", "races", "lockset"]


@dataclass
class ScenarioResult:
    """One drill's verdict."""

    name: str
    seed: int
    #: ``recovered`` or ``degraded`` (see the module docstring).
    outcome: str
    ok: bool
    detail: str
    #: Human-readable invariant checks, each prefixed ``ok:``/``FAIL:``.
    checks: List[str] = field(default_factory=list)
    #: The plan's injection log: ``[site, op, key]`` per fired fault.
    injected: List[List[Optional[str]]] = field(default_factory=list)
    #: Which server front end the drill ran against.
    backend: str = "thread"

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.name,
            "seed": self.seed,
            "backend": self.backend,
            "outcome": self.outcome,
            "ok": self.ok,
            "detail": self.detail,
            "checks": self.checks,
            "injected": self.injected,
        }


class _Checks:
    """Collects named assertions without aborting the drill."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.ok = True

    def expect(self, condition: bool, what: str) -> bool:
        self.lines.append(("ok: " if condition else "FAIL: ") + what)
        self.ok = self.ok and condition
        return condition


def _zoo(name: str):
    from ..sim import trace_zoo

    return trace_zoo.get(name)


def _offline_doc(spec) -> Dict[str, Any]:
    from ..api import Session

    return Session(spec.trace(), _ANALYSES, name=spec.name).run().to_json()


def _agrees(checks: _Checks, doc: Dict[str, Any], base: Dict[str, Any],
            what: str) -> None:
    checks.expect(doc["analyses"] == base["analyses"],
                  f"{what}: analyses equal the offline run")
    checks.expect(doc["verdict"] == base["verdict"],
                  f"{what}: verdict equals the offline run")
    checks.expect(doc["trace"]["events"] == base["trace"]["events"],
                  f"{what}: event count equals the offline run")


def _result(name: str, seed: int, plan: FaultPlan, outcome: str,
            checks: _Checks, detail: str,
            backend: str = "thread") -> ScenarioResult:
    return ScenarioResult(
        name=name,
        seed=seed,
        outcome=outcome,
        ok=checks.ok,
        detail=detail,
        checks=checks.lines,
        injected=[list(entry) for entry in plan.log],
        backend=backend,
    )


# -- the matrix --------------------------------------------------------------


def scenario_reset_mid_events(seed: int, backend: str = "thread") -> ScenarioResult:
    """The client's connection resets mid-stream; it reconnects with
    ``resume`` and re-sends from the server's position. Positioned
    frames make the overlap idempotent: the report equals offline."""
    from ..service import ServiceServer, submit_trace

    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("wire.send", op="reset", after_n=2, times=1, match="drill-reset")
    with tempfile.TemporaryDirectory() as spool:
        with ServiceServer(port=0, backend=backend, shards=2, spool=spool,
                           checkpoint_every=4).start() as server:
            with injected(plan):
                doc = submit_trace(
                    server.host, server.port, list(spec.trace()), _ANALYSES,
                    name=spec.name, batch=3, session_id="drill-reset",
                    deadline=DRILL_DEADLINE, jitter_seed=seed,
                )
            checks.expect(len(plan.log) >= 1, "the reset actually fired")
            _agrees(checks, doc, base, "report after reconnect+resume")
    return _result("reset-mid-events", seed, plan, "recovered", checks,
                   "connection reset healed by reconnect + positioned resume", backend=backend)


def scenario_shard_crash(seed: int, backend: str = "thread") -> ScenarioResult:
    """One shard worker dies mid-batch. The router restarts it from the
    checkpoint spool; the client's flush exposes the rollback and the
    positioned re-send closes the gap. The report equals offline, the
    sibling session on the other shard never notices."""
    from ..service import ServiceClient, ServiceServer, submit_trace

    spec = _zoo("paper-rho1")
    base = _offline_doc(spec)
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("shard.batch", op="crash", after_n=2, times=1, match="drill-crash")
    with tempfile.TemporaryDirectory() as spool:
        with ServiceServer(port=0, backend=backend, shards=2, spool=spool,
                           checkpoint_every=4).start() as server:
            with injected(plan):
                doc = submit_trace(
                    server.host, server.port, list(spec.trace()), _ANALYSES,
                    name=spec.name, batch=3, session_id="drill-crash",
                    deadline=DRILL_DEADLINE, jitter_seed=seed,
                )
            checks.expect(len(plan.log) == 1, "the crash actually fired")
            _agrees(checks, doc, base, "report after shard restart")
            with ServiceClient(server.host, server.port,
                               deadline=DRILL_DEADLINE) as client:
                stats = client.stats()
            checks.expect(stats.get("shard_restarts", 0) >= 1,
                          "stats count the shard restart")
            sibling = submit_trace(
                server.host, server.port, list(spec.trace()), _ANALYSES,
                name=spec.name, deadline=DRILL_DEADLINE,
            )
            _agrees(checks, sibling, base, "sibling session after the crash")
    return _result("shard-crash", seed, plan, "recovered", checks,
                   "dead shard restarted from spool; gap re-sent; siblings fine", backend=backend)


def scenario_poison_analysis(seed: int, backend: str = "thread") -> ScenarioResult:
    """One tenant's analysis raises mid-stream. That session is
    quarantined behind a typed ``analysis`` ERROR; its shard and a
    healthy sibling stream keep working. Documented degradation."""
    from ..service import ServiceError, ServiceServer, submit_trace

    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("analysis.step", op="raise", after_n=2, times=None,
             match="poisoned")
    detail = ""
    with ServiceServer(port=0, backend=backend, shards=2).start() as server:
        with injected(plan):
            try:
                submit_trace(
                    server.host, server.port, list(spec.trace()), _ANALYSES,
                    name="poisoned", batch=3, session_id="drill-poison",
                    deadline=DRILL_DEADLINE, jitter_seed=seed,
                )
                checks.expect(False, "poisoned session raised a typed error")
            except ServiceError as exc:
                detail = str(exc)
                checks.expect(exc.code == "analysis",
                              f"typed quarantine code (got {exc.code!r})")
        checks.expect(len(plan.log) >= 1, "the poison actually fired")
        healthy = submit_trace(
            server.host, server.port, list(spec.trace()), _ANALYSES,
            name=spec.name, deadline=DRILL_DEADLINE,
        )
        _agrees(checks, healthy, base, "healthy sibling on the same server")
        from ..service import ServiceClient

        with ServiceClient(server.host, server.port,
                           deadline=DRILL_DEADLINE) as client:
            stats = client.stats()
        checks.expect(stats.get("sessions_quarantined", 0) == 1,
                      "stats count exactly one quarantined session")
    return _result("poison-analysis", seed, plan, "degraded", checks,
                   detail or "poisoned session quarantined with a typed error", backend=backend)


def scenario_torn_checkpoint(seed: int, backend: str = "thread") -> ScenarioResult:
    """The server dies mid-checkpoint (a torn spool write). On restart
    the torn entry is salvaged to ``*.bad`` — never deserialized — and
    re-submitting the stream from scratch yields the correct report.
    Documented degradation: durability lost, correctness kept."""
    from ..service import ServiceServer, submit_trace

    spec = _zoo("lock-cycle")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("spool.write", op="torn", times=None, match="drill-torn")
    with tempfile.TemporaryDirectory() as spool:
        with ServiceServer(port=0, backend=backend, spool=spool) as server:
            server.start()
            with injected(plan):
                info = submit_trace(
                    server.host, server.port, events, _ANALYSES,
                    name=spec.name, session_id="drill-torn",
                    stop_after=max(2, len(events) // 2), checkpoint=True,
                    deadline=DRILL_DEADLINE, jitter_seed=seed,
                )
            checks.expect(info["open"], "first half streamed and checkpointed")
            checks.expect(len(plan.log) >= 1, "the torn write actually fired")
        # the "kill": the first server is gone; a new one reads the spool
        with ServiceServer(port=0, backend=backend, spool=spool).start() as server:
            checks.expect(
                any("drill-torn" in s["file"] for s in server.salvaged),
                "restart salvaged the torn entry (never deserialized)",
            )
            checks.expect(server.recovered == [],
                          "the torn session did not resurrect")
            doc = submit_trace(
                server.host, server.port, events, _ANALYSES,
                name=spec.name, deadline=DRILL_DEADLINE,
            )
            _agrees(checks, doc, base, "full re-send after salvage")
    return _result("torn-checkpoint", seed, plan, "degraded", checks,
                   "torn checkpoint quarantined to *.bad; full re-send correct", backend=backend)


def scenario_corrupt_spool(seed: int, backend: str = "thread") -> ScenarioResult:
    """One spooled checkpoint is corrupted at rest (a flipped byte).
    Restart recovery detects the CRC mismatch, quarantines that entry,
    and still recovers the healthy sibling, which resumes to a report
    equal to offline."""
    from ..service import ServiceServer, submit_trace

    spec = _zoo("paper-rho1")
    base = _offline_doc(spec)
    events = list(spec.trace())
    half = max(2, len(events) // 2)
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("spool.write", op="corrupt", times=None, match="drill-corrupt")
    with tempfile.TemporaryDirectory() as spool:
        with ServiceServer(port=0, backend=backend, shards=2, spool=spool) as server:
            server.start()
            with injected(plan):
                for sid in ("drill-corrupt", "drill-healthy"):
                    info = submit_trace(
                        server.host, server.port, events, _ANALYSES,
                        name=spec.name, session_id=sid,
                        stop_after=half, checkpoint=True,
                        deadline=DRILL_DEADLINE, jitter_seed=seed,
                    )
                    checks.expect(info["open"], f"{sid} checkpointed mid-stream")
            checks.expect(len(plan.log) >= 1, "the corruption actually fired")
        with ServiceServer(port=0, backend=backend, shards=2, spool=spool).start() as server:
            checks.expect(
                any("drill-corrupt" in s["file"] for s in server.salvaged),
                "the corrupt entry was salvaged, not deserialized",
            )
            checks.expect("drill-healthy" in server.recovered,
                          "the healthy sibling recovered")
            doc = submit_trace(
                server.host, server.port, events, _ANALYSES,
                name=spec.name, session_id="drill-healthy", resume=True,
                deadline=DRILL_DEADLINE,
            )
            _agrees(checks, doc, base, "healthy sibling resumed to completion")
    return _result("corrupt-spool", seed, plan, "degraded", checks,
                   "corrupt entry quarantined; healthy sibling recovered", backend=backend)


def scenario_inbox_stall(seed: int, backend: str = "thread") -> ScenarioResult:
    """A shard inbox stalls (backpressure): the server answers BUSY and
    the client's bounded jittered backoff rides it out. The report
    equals offline and the server counted its BUSY replies."""
    from ..service import ServiceClient, ServiceServer, submit_trace

    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("shard.inbox", op="stall", after_n=1, times=3, match="drill-stall")
    with ServiceServer(port=0, backend=backend).start() as server:
        with injected(plan):
            doc = submit_trace(
                server.host, server.port, list(spec.trace()), _ANALYSES,
                name=spec.name, batch=3, session_id="drill-stall",
                deadline=DRILL_DEADLINE, jitter_seed=seed,
            )
        checks.expect(len(plan.log) == 3, "the stall fired three times")
        _agrees(checks, doc, base, "report after riding out BUSY")
        with ServiceClient(server.host, server.port,
                           deadline=DRILL_DEADLINE) as client:
            stats = client.stats()
        checks.expect(stats.get("server", {}).get("busy_replies", 0) >= 3,
                      "the server counted its BUSY replies")
    return _result("inbox-stall", seed, plan, "recovered", checks,
                   "backpressure absorbed by bounded jittered backoff", backend=backend)


SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "reset-mid-events": scenario_reset_mid_events,
    "shard-crash": scenario_shard_crash,
    "poison-analysis": scenario_poison_analysis,
    "torn-checkpoint": scenario_torn_checkpoint,
    "corrupt-spool": scenario_corrupt_spool,
    "inbox-stall": scenario_inbox_stall,
}

#: Seed the CI chaos-smoke job pins.
DEFAULT_SEED = 7207


def run_scenario(
    name: str, seed: int = DEFAULT_SEED, backend: str = "thread"
) -> ScenarioResult:
    """Run one named drill (raises ``KeyError`` on an unknown name).

    ``backend`` picks the server front end the drill stands up
    (``"thread"`` or ``"async"``) — the fault sites live in the shared
    connection core, so the same plan exercises either unchanged.
    """
    return SCENARIOS[name](seed, backend=backend)


def run_all(
    seed: int = DEFAULT_SEED, backend: str = "thread"
) -> List[ScenarioResult]:
    """Run the whole matrix, in a stable order."""
    return [SCENARIOS[name](seed, backend=backend) for name in SCENARIOS]


def run_plan_drill(plan: FaultPlan, backend: str = "thread") -> ScenarioResult:
    """The generic drill behind ``repro chaos --plan``: stream one zoo
    trace through a spooled server with the given plan armed.

    ``recovered`` if the report still equals the offline run;
    ``degraded`` if the failure surfaced as a typed
    :class:`~repro.service.ServiceError` — either way the drill
    terminates and reports what fired. Anything else fails the drill.
    """
    from ..service import ServiceError, ServiceServer, submit_trace

    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    checks = _Checks()
    outcome, detail = "recovered", "report equals the offline run"
    with tempfile.TemporaryDirectory() as spool:
        with ServiceServer(port=0, backend=backend, shards=2, spool=spool,
                           checkpoint_every=4).start() as server:
            with injected(plan):
                try:
                    doc = submit_trace(
                        server.host, server.port, list(spec.trace()),
                        _ANALYSES, name=spec.name, batch=3,
                        session_id="drill-plan",
                        deadline=DRILL_DEADLINE, jitter_seed=plan.seed,
                    )
                except ServiceError as exc:
                    outcome = "degraded"
                    detail = f"typed degradation: {exc}"
                    checks.expect(bool(exc.code), "the error carries a code")
                else:
                    _agrees(checks, doc, base, "report under the armed plan")
    return _result("plan-drill", plan.seed, plan, outcome, checks, detail, backend=backend)
