"""The injection switchboard: one installed plan, cheap site checks.

The whole service is threaded with calls like::

    action = fire("wire.send")
    if action is not None:
        ...inject the fault action describes...

**Zero-overhead by default**: with no plan installed, :func:`fire` is a
single attribute load and a ``None`` check — the existing service
suites (zoo agreement, checkpoint/restart) run the untouched code
paths. Installing a plan (:func:`install`, or the :func:`injected`
context manager the chaos drills use) arms every site at once,
process-wide; sites in shard worker threads and forked shard processes
see the same plan object (fork inherits it).

Frame mutators used by the wire sites live here too, so the client and
server inject byte-level damage the same deterministic way.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from .plan import FaultAction, FaultPlan

_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replacing any previous one)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Disarm fault injection; every site reverts to zero overhead."""
    global _PLAN
    _PLAN = None


def current() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _PLAN


def fire(site: str, key: Optional[str] = None) -> Optional[FaultAction]:
    """Ask the armed plan (if any) whether a fault fires at ``site``."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.fire(site, key)


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (drill scope)."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


# -- deterministic frame damage (shared by wire.send / wire.reply) ----------


def mutate_frame(frame: bytes, action: FaultAction) -> bytes:
    """Apply ``truncate``/``corrupt`` damage to one encoded wire frame.

    * ``truncate`` — cut the frame mid-payload (a short write / torn
      TCP segment): the peer sees EOF inside a frame.
    * ``corrupt`` — flip one byte *past the length field* (offset >= 4)
      so the framing length stays intact and the peer fails fast with a
      typed error instead of waiting for bytes that never come.

    The damage position comes from the action's seeded RNG — the same
    plan seed injects the same broken bytes.
    """
    if action.op == "truncate":
        cut = action.rng.randrange(1, len(frame)) if len(frame) > 1 else 1
        return frame[:cut]
    if action.op == "corrupt":
        data = bytearray(frame)
        lo = min(4, len(data) - 1)
        pos = action.rng.randrange(lo, len(data))
        data[pos] ^= 1 << action.rng.randrange(8)
        return bytes(data)
    return frame
