"""Declarative, seeded fault plans — the ``repro-faults/1`` format.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries plus one
seeded RNG. Each rule names an **injection site** (a string the service
code passes to :func:`repro.faults.injector.fire` at the moment the
fault could happen), an **op** (what kind of failure to inject there),
and firing conditions:

* ``after_n`` — skip the first N arrivals at the site;
* ``times`` — fire at most N times (``None`` = every arrival);
* ``prob`` — fire with this probability, drawn from the plan's seeded
  RNG (so the *same seed replays the same faults*);
* ``match`` — only fire when the site's context key (session id,
  analysis name, …) contains this substring.

Plans serialize to JSON (see ``docs/SERVICE.md`` for the schema and the
site/op catalog) and load via :func:`load_plan` — which is what the
``repro chaos --plan`` verb does. Everything here is pure bookkeeping;
the actual injection lives in :mod:`repro.faults.injector` and the
service call sites.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Format tag of the JSON plan document.
PLAN_VERSION = "repro-faults/1"

#: Injection sites the service threads through, and the ops each
#: understands. Documented (with the behavior they provoke) in
#: docs/SERVICE.md's "Failure modes & guarantees" section.
SITES: Dict[str, tuple] = {
    # client -> server frame about to be sent (ServiceClient)
    "wire.send": ("truncate", "corrupt", "reset"),
    # server -> client reply about to be sent (_Handler)
    "wire.reply": ("truncate", "corrupt", "reset"),
    # a decoded EVENTS batch about to be routed (at-least-once delivery)
    "server.events": ("duplicate",),
    # a spool checkpoint about to be written (RecoveryManager.save)
    "spool.write": ("torn", "corrupt", "enospc"),
    # a shard worker about to process one EVENTS batch (ShardWorker)
    "shard.batch": ("crash",),
    # the router about to enqueue a batch on a shard inbox
    "shard.inbox": ("stall",),
    # an api.Session.feed sweep about to step its analyses
    "analysis.step": ("raise",),
    # a cluster HANDOFF (checkpoint blob) about to be shipped to a peer
    "cluster.handoff": ("drop", "duplicate"),
    # a gossip round about to contact one peer (ClusterCoordinator):
    # drop = the contact never happens; delay = it lands one round
    # late; duplicate = the peer is contacted twice; reorder = the
    # contact moves to the end of this round
    "cluster.gossip": ("drop", "delay", "duplicate", "reorder"),
    # one node-to-node message about to leave on a directed link; keys
    # are "src->dst", so match carves partitions: match="a->b" is a
    # one-way cut, the pair {"a->", "->a"} isolates node a entirely,
    # and a bounded `times` heals the partition when it runs out
    "net.partition": ("drop",),
}


class FaultPlanError(ValueError):
    """A plan document is malformed (unknown site/op, bad field)."""


class FaultInjected(RuntimeError):
    """Raised *by* an injected fault (e.g. an analysis whose step
    raises). Deliberately a plain ``RuntimeError`` subtype: the service
    must survive it through the same paths as a genuine bug."""


class ShardCrash(BaseException):
    """An injected shard-worker crash.

    A ``BaseException`` on purpose: it must escape the per-command
    ``except Exception`` isolation in the shard loop, exactly like a
    segfault or ``kill -9`` of a worker process would.
    """


@dataclass
class FaultRule:
    """One declarative fault: fire ``op`` at ``site`` under conditions."""

    site: str
    op: str
    after_n: int = 0
    times: Optional[int] = 1
    prob: float = 1.0
    match: Optional[str] = None
    #: Arrivals seen at this rule (those passing ``match``).
    seen: int = field(default=0, compare=False)
    #: Times this rule has fired.
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r} "
                f"(known: {', '.join(sorted(SITES))})"
            )
        if self.op not in SITES[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} does not support op {self.op!r} "
                f"(supported: {', '.join(SITES[self.site])})"
            )
        if self.after_n < 0:
            raise FaultPlanError("after_n must be >= 0")
        if self.times is not None and self.times < 1:
            raise FaultPlanError("times must be >= 1 (or null for always)")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError("prob must be in [0, 1]")

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"site": self.site, "op": self.op}
        if self.after_n:
            doc["after_n"] = self.after_n
        if self.times != 1:
            doc["times"] = self.times
        if self.prob != 1.0:
            doc["prob"] = self.prob
        if self.match is not None:
            doc["match"] = self.match
        return doc


@dataclass(frozen=True)
class FaultAction:
    """What :meth:`FaultPlan.fire` hands back to an injection site."""

    site: str
    op: str
    rule: FaultRule
    #: Seeded RNG for the action's own randomness (which byte to flip,
    #: where to truncate) — deterministic per plan seed.
    rng: random.Random


class FaultPlan:
    """A seeded set of fault rules, consulted by injection sites.

    Thread-safe enough for the service's threading model: rule counters
    are bumped under the GIL and chaos scenarios target distinct sites
    from distinct threads; exact interleavings never change *whether* a
    deterministic (prob=1) rule fires, only when probabilistic rules
    consume RNG draws.
    """

    def __init__(
        self, rules: Optional[List[FaultRule]] = None, seed: int = 0
    ) -> None:
        self.rules: List[FaultRule] = list(rules or [])
        self.seed = seed
        self.rng = random.Random(seed)
        #: Every fault actually fired: ``(site, op, key)`` tuples, in
        #: order — the chaos report's injection log.
        self.log: List[tuple] = []

    def add(self, site: str, op: str, **kwargs: Any) -> "FaultPlan":
        """Append one rule (keyword args as in :class:`FaultRule`)."""
        self.rules.append(FaultRule(site=site, op=op, **kwargs))
        return self

    def fire(self, site: str, key: Optional[str] = None) -> Optional[FaultAction]:
        """Should a fault fire at ``site`` now? First matching rule wins."""
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.match is not None and (key is None or rule.match not in key):
                continue
            rule.seen += 1
            if rule.seen <= rule.after_n:
                continue
            if rule.times is not None and rule.fired >= rule.times:
                continue
            if rule.prob < 1.0 and self.rng.random() >= rule.prob:
                continue
            rule.fired += 1
            self.log.append((site, rule.op, key))
            return FaultAction(site, rule.op, rule, self.rng)
        return None

    # -- JSON ---------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "rules": [rule.to_json() for rule in self.rules],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a ``repro-faults/1`` document.

        Raises:
            FaultPlanError: On a version mismatch or malformed rule.
        """
        if not isinstance(doc, dict):
            raise FaultPlanError("plan must be a JSON object")
        version = doc.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise FaultPlanError(
                f"plan version {version!r} unsupported (want {PLAN_VERSION!r})"
            )
        seed = doc.get("seed", 0)
        if not isinstance(seed, int):
            raise FaultPlanError("seed must be an integer")
        raw_rules = doc.get("rules", [])
        if not isinstance(raw_rules, list):
            raise FaultPlanError("rules must be a list")
        rules = []
        for entry in raw_rules:
            if not isinstance(entry, dict):
                raise FaultPlanError(f"bad rule {entry!r}")
            known = {"site", "op", "after_n", "times", "prob", "match"}
            unknown = set(entry) - known
            if unknown:
                raise FaultPlanError(
                    f"unknown rule field(s): {', '.join(sorted(unknown))}"
                )
            try:
                rules.append(FaultRule(**entry))
            except TypeError as exc:
                raise FaultPlanError(f"bad rule {entry!r}: {exc}") from exc
        return cls(rules, seed=seed)


def load_plan(path: Union[str, Path]) -> FaultPlan:
    """Load a ``repro-faults/1`` JSON plan file.

    Raises:
        FaultPlanError: On unreadable or malformed input.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise FaultPlanError(f"cannot read plan {path}: {exc}") from exc
    except ValueError as exc:
        raise FaultPlanError(f"plan {path} is not valid JSON: {exc}") from exc
    return FaultPlan.from_json(doc)


def save_plan(plan: FaultPlan, path: Union[str, Path]) -> None:
    """Write a plan as a ``repro-faults/1`` JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan.to_json(), handle, indent=2)
        handle.write("\n")
