"""repro.faults — deterministic, seeded fault injection for the service.

A :class:`FaultPlan` is a seeded RNG plus declarative rules
(``{"site": "wire.send", "op": "truncate", "after_n": 3}``) loaded from
JSON (``repro-faults/1``). Installing a plan arms injection *sites*
threaded through the service stack — the wire codec, the checkpoint
spool, the shard router, the analysis step — so chaos drills can
reproduce, byte for byte, the exact failure a seed describes.

With no plan installed every site is a single ``None`` check: the
service runs its untouched code paths at zero overhead.

See ``docs/SERVICE.md`` for the failure-mode matrix the drills pin.
"""

from .injector import current, fire, injected, install, mutate_frame, uninstall
from .netsim import (
    CLUSTER_SCENARIOS,
    NetSim,
    SimClock,
    run_cluster_all,
    run_cluster_scenario,
)
from .plan import (
    PLAN_VERSION,
    SITES,
    FaultAction,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    ShardCrash,
    load_plan,
    save_plan,
)

__all__ = [
    "CLUSTER_SCENARIOS",
    "PLAN_VERSION",
    "SITES",
    "FaultAction",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "NetSim",
    "ShardCrash",
    "SimClock",
    "current",
    "fire",
    "injected",
    "install",
    "load_plan",
    "mutate_frame",
    "save_plan",
    "uninstall",
]
