"""Deterministic cluster network simulation — the jepsen-lite harness.

:class:`NetSim` boots an N-node ``repro`` ring *in process* (real TCP
servers, real shard routers, real checkpoint spools) but takes the two
nondeterministic inputs away from the operating system:

* **time** — every coordinator's suspicion clock is a shared
  :class:`SimClock` that only advances when the harness says so;
* **scheduling** — coordinators run with ``manual_ticks=True`` and the
  harness steps them one at a time, in node-id order, one *round* per
  :meth:`NetSim.tick_round`.

A seeded :class:`~repro.faults.plan.FaultPlan` then carves the network:
``net.partition`` rules (keyed ``"src->dst"``) cut directed links,
``cluster.gossip`` rules delay/duplicate/reorder/drop gossip contacts,
``cluster.handoff`` rules lose checkpoint shipments. Because every
fault decision flows through the one seeded plan and every tick runs in
a fixed order under simulated time, **the same seed replays the same
fault trace** — ``plan.log`` is bit-for-bit reproducible, which is what
the CI ``partition-smoke`` job diffs.

While the chaos runs, the harness drives *live tenant streams* through
the ordinary :class:`~repro.cluster.client.ClusterClient` and checks
the invariants the cluster promises:

* **single ownership** — after every round, at most one node whose
  membership epoch is the cluster maximum both ring-owns and hosts any
  tracked session (:attr:`NetSim.violations` collects breaches);
* **durability** — a stream resumed after the fault window produces a
  report equal to the offline run (no acknowledged events lost);
* **convergence** — membership epochs and alive-sets agree on every
  node after the partition heals (:meth:`NetSim.converge`).

:data:`CLUSTER_SCENARIOS` is the drill matrix behind
``repro chaos --cluster``: two-way and one-way partitions, gossip
chaos, gray failure (a slow-but-alive node handed off early by the RTT
suspicion score), and overload shedding (a tenant over its inflight
quota answered with a paced ``BUSY``).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from .injector import injected
from .plan import FaultPlan
from .scenarios import (
    DEFAULT_SEED,
    DRILL_DEADLINE,
    ScenarioResult,
    _ANALYSES,
    _Checks,
    _agrees,
    _offline_doc,
    _result,
    _zoo,
)

#: Simulated seconds one gossip round advances the shared clock.
SIM_GOSSIP_INTERVAL = 0.05

#: Default ring size a simulation boots.
SIM_NODES = 3


class SimClock:
    """Simulated monotonic time: advances only when told to.

    Installed as every coordinator's ``clock`` attribute, so silence
    and RTT bookkeeping — the whole suspicion machinery — runs on
    harness-controlled time instead of the wall clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def time(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds


class NetSim:
    """An N-node in-process cluster under simulated time.

    Args:
        nodes: Ring size; node ids are ``n1..nN`` (also the
            ``net.partition`` link-key components).
        seed: Seed for the cluster client's retry jitter (the fault
            plan carries its own).
        backend: Server front end (``"thread"`` or ``"async"``).
        gossip_interval: Simulated seconds per round.
        suspect_after: Simulated seconds of silence before a death
            verdict (default: the coordinator's 4-interval rule).
        tenant_quota: Per-tenant inflight batch quota on every node
            (``None`` disables shedding).
        shards: Shards per node.
    """

    def __init__(
        self,
        nodes: int = SIM_NODES,
        seed: int = DEFAULT_SEED,
        backend: str = "thread",
        gossip_interval: float = SIM_GOSSIP_INTERVAL,
        suspect_after: Optional[float] = None,
        tenant_quota: Optional[int] = None,
        shards: int = 1,
    ) -> None:
        if nodes < 2:
            raise ValueError("a network simulation needs at least 2 nodes")
        self.order: List[str] = [f"n{i + 1}" for i in range(nodes)]
        self.seed = seed
        self.backend = backend
        self.gossip_interval = gossip_interval
        self.suspect_after = (
            suspect_after if suspect_after is not None
            else 4 * gossip_interval
        )
        #: Rounds of pure silence before a death verdict — scenarios
        #: compare detection latencies against this.
        self.suspect_rounds = max(
            1, int(round(self.suspect_after / gossip_interval))
        )
        self.tenant_quota = tenant_quota
        self.shards = shards
        self.clock = SimClock()
        self.servers: Dict[str, Any] = {}
        self.rounds = 0
        self.tracked: Set[str] = set()
        #: Single-ownership breaches, one dict per (round, session).
        self.violations: List[Dict[str, Any]] = []
        #: Errors a tick raised (a tick must never kill the harness).
        self.tick_errors: List[str] = []
        self._root: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> "NetSim":
        """Start every node (the first seeds the rest) under sim time."""
        from ..obs import tracing
        from ..service import ServiceServer

        # A tracer activated around a netsim run records spans on sim
        # time: same seed + same scenario => byte-identical trace.jsonl.
        tracer = tracing.active()
        if tracer is not None:
            tracer.clock = self.clock.time
        self._root = tempfile.mkdtemp(prefix="repro-netsim-")
        join: List[str] = []
        for node_id in self.order:
            server = ServiceServer(
                port=0,
                backend=self.backend,
                shards=self.shards,
                spool=str(Path(self._root) / node_id),
                checkpoint_every=4,
                cluster=True,
                join=list(join),
                node_id=node_id,
                gossip_interval=self.gossip_interval,
                suspect_after=self.suspect_after,
                tenant_quota=self.tenant_quota,
            )
            # Take the coordinator off the wall clock *before* it
            # starts: the harness owns both time and tick order.
            server.cluster.manual_ticks = True
            server.cluster.clock = self.clock.time
            server.start()
            self.servers[node_id] = server
            join = [server.address]
        return self

    def stop(self) -> None:
        for node_id in reversed(self.order):
            server = self.servers.pop(node_id, None)
            if server is not None:
                server.stop()
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None

    def __enter__(self) -> "NetSim":
        return self.boot()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the simulation loop -------------------------------------------------

    def tick_round(self) -> None:
        """One simulated round: every coordinator ticks once, in node-id
        order, then the shared clock advances one gossip interval and
        the ownership invariant is checked."""
        for node_id in self.order:
            try:
                self.servers[node_id].cluster.tick()
            except Exception as exc:  # a sim tick must never die either
                self.tick_errors.append(f"{node_id} round {self.rounds}: {exc}")
        self.clock.advance(self.gossip_interval)
        self.rounds += 1
        self.check_invariants()

    def run_rounds(self, count: int) -> None:
        for _ in range(count):
            self.tick_round()

    # -- invariants ----------------------------------------------------------

    def track(self, session_id: str) -> None:
        """Watch a session in the per-round single-ownership check."""
        self.tracked.add(session_id)

    def _census(self) -> Dict[str, Tuple[int, Set[str], Any]]:
        rows: Dict[str, Tuple[int, Set[str], Any]] = {}
        for node_id in self.order:
            server = self.servers[node_id]
            try:
                local = {r["session"] for r in server.router.list_sessions()}
            except Exception:
                local = set()
            rows[node_id] = (server.cluster.epoch, local, server.cluster)
        return rows

    def check_invariants(self) -> None:
        """At most one *epoch-fenced* owner per tracked session: among
        the nodes at the cluster-maximum membership epoch, no more than
        one may both ring-own and host the session. (Nodes behind the
        maximum epoch are the fenced side of a partition — their writes
        are rejected, so they cannot constitute a second owner.)"""
        if not self.tracked:
            return
        rows = self._census()
        max_epoch = max(epoch for epoch, _local, _coord in rows.values())
        for session_id in sorted(self.tracked):
            owners = [
                node_id
                for node_id, (epoch, local, coord) in rows.items()
                if epoch == max_epoch
                and session_id in local
                and coord.owns(session_id)
            ]
            if len(owners) > 1:
                self.violations.append({
                    "round": self.rounds,
                    "session": session_id,
                    "epoch": max_epoch,
                    "owners": owners,
                })

    def converged(self) -> bool:
        """Every node agrees: same epoch, same alive-set, nobody dead."""
        epochs = set()
        alive_views = set()
        for node_id in self.order:
            coord = self.servers[node_id].cluster
            epochs.add(coord.epoch)
            alive_views.add(tuple(coord.membership.alive_ids()))
        want = tuple(sorted(self.order))
        return len(epochs) == 1 and alive_views == {want}

    def converge(self, max_rounds: int = 80) -> int:
        """Tick until membership converges; rounds taken, or ``-1``."""
        for used in range(max_rounds + 1):
            if self.converged():
                return used
            self.tick_round()
        return -1

    # -- views the scenarios use --------------------------------------------

    def addresses(self) -> List[str]:
        return [self.servers[node_id].address for node_id in self.order]

    def client(self):
        from ..cluster import ClusterClient

        return ClusterClient(self.addresses(), jitter_seed=self.seed)

    def find_host(self, session_id: str) -> Optional[str]:
        """The node currently hosting the session live (or ``None``)."""
        for node_id, (_epoch, local, _coord) in self._census().items():
            if session_id in local:
                return node_id
        return None

    def peer_view(self, node_id: str, peer_id: str) -> Optional[str]:
        """``node_id``'s current status for ``peer_id`` (alive/dead)."""
        info = self.servers[node_id].cluster.membership.get(peer_id)
        return None if info is None else info.status


# -- the cluster drill matrix ------------------------------------------------


def cluster_scenario_partition_two_way(
    seed: int, backend: str = "thread"
) -> ScenarioResult:
    """A session's owner is fully partitioned mid-stream. The survivors
    declare it dead within the suspicion window and the replica
    successor adopts its checkpoint; the victim (its own epoch stuck)
    cannot accept fenced writes. After the heal, membership converges,
    the resumed stream lands on the ring owner, and the report equals
    the offline run — with zero double-owner windows along the way."""
    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    with NetSim(nodes=3, seed=seed, backend=backend) as sim:
        checks.expect(sim.converge() >= 0, "ring converged after boot")
        session_id = "drill-net-two-way"
        sim.track(session_id)
        client = sim.client()
        half = max(4, len(events) // 2)
        info = client.submit_trace(
            events, _ANALYSES, name=spec.name, batch=4,
            session_id=session_id, stop_after=half, checkpoint=True,
            deadline=DRILL_DEADLINE,
        )
        checks.expect(bool(info.get("open")),
                      "first half streamed and checkpointed")
        sim.run_rounds(3)  # let replication ship the checkpoint
        victim = sim.find_host(session_id)
        checks.expect(victim is not None, "the session has a live host")
        plan.add("net.partition", op="drop", times=None, match=f"{victim}->")
        plan.add("net.partition", op="drop", times=None, match=f"->{victim}")
        with injected(plan):
            sim.run_rounds(sim.suspect_rounds + 6)
        checks.expect(len(plan.log) >= 1,
                      "the partition actually dropped link traffic")
        survivors = [n for n in sim.order if n != victim]
        checks.expect(
            any(sim.peer_view(s, victim) == "dead" for s in survivors),
            "survivors declared the partitioned owner dead",
        )
        healed = sim.converge(max_rounds=120)
        checks.expect(healed >= 0, "membership re-converged after the heal")
        doc = client.submit_trace(
            events, _ANALYSES, name=spec.name, batch=4,
            session_id=session_id, resume=True, deadline=DRILL_DEADLINE,
        )
        _agrees(checks, doc, base, "report resumed across the partition")
        checks.expect(sim.violations == [],
                      "zero double-owner windows at the max epoch")
        checks.expect(sim.tick_errors == [], "no tick ever raised")
    return _result(
        "partition-two-way", seed, plan, "recovered", checks,
        "owner partitioned mid-stream; failover + heal kept one fenced "
        "owner and the offline report", backend=backend,
    )


def cluster_scenario_partition_one_way(
    seed: int, backend: str = "thread"
) -> ScenarioResult:
    """An asymmetric cut: ``n1``'s messages to ``n3`` vanish while the
    reverse direction flows. Push-pull gossip absorbs it — ``n3``'s own
    contacts keep both views fresh — so nobody is declared dead, the
    epoch never moves, and a stream runs to the offline report."""
    spec = _zoo("paper-rho1")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("net.partition", op="drop", times=None, match="n1->n3")
    with NetSim(nodes=3, seed=seed, backend=backend,
                suspect_after=2.0) as sim:
        checks.expect(sim.converge() >= 0, "ring converged after boot")
        epoch_before = sim.servers["n1"].cluster.epoch
        session_id = "drill-net-one-way"
        sim.track(session_id)
        client = sim.client()
        with injected(plan):
            sim.run_rounds(8)
            doc = client.submit_trace(
                events, _ANALYSES, name=spec.name, batch=4,
                session_id=session_id, deadline=DRILL_DEADLINE,
            )
            sim.run_rounds(8)
        checks.expect(len(plan.log) >= 8, "the one-way cut kept firing")
        checks.expect(sim.converged(), "membership stayed converged")
        checks.expect(
            sim.servers["n1"].cluster.epoch == epoch_before,
            "no false death: the epoch never moved",
        )
        _agrees(checks, doc, base, "report under the asymmetric cut")
        checks.expect(sim.violations == [], "zero double-owner windows")
        checks.expect(sim.tick_errors == [], "no tick ever raised")
    return _result(
        "partition-one-way", seed, plan, "recovered", checks,
        "asymmetric link cut absorbed by push-pull gossip; no false "
        "death, offline-equal report", backend=backend,
    )


def cluster_scenario_gossip_chaos(
    seed: int, backend: str = "thread"
) -> ScenarioResult:
    """Seeded gossip weather: contacts are randomly delayed one round,
    reordered to the end of the round, or duplicated. Membership must
    ride it out without a single false death while a stream completes
    to the offline report."""
    spec = _zoo("lock-cycle")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    plan = FaultPlan(seed=seed)
    plan.add("cluster.gossip", op="delay", times=None, prob=0.25)
    plan.add("cluster.gossip", op="reorder", times=None, prob=0.25)
    plan.add("cluster.gossip", op="duplicate", times=None, prob=0.25)
    with NetSim(nodes=3, seed=seed, backend=backend,
                suspect_after=2.0) as sim:
        checks.expect(sim.converge() >= 0, "ring converged after boot")
        epoch_before = sim.servers["n1"].cluster.epoch
        session_id = "drill-net-gossip"
        sim.track(session_id)
        client = sim.client()
        with injected(plan):
            sim.run_rounds(10)
            doc = client.submit_trace(
                events, _ANALYSES, name=spec.name, batch=4,
                session_id=session_id, deadline=DRILL_DEADLINE,
            )
            sim.run_rounds(10)
        checks.expect(len(plan.log) >= 1, "the gossip chaos actually fired")
        checks.expect(sim.converged(), "membership stayed converged")
        checks.expect(
            sim.servers["n1"].cluster.epoch == epoch_before,
            "no false death under delay/reorder/duplicate",
        )
        _agrees(checks, doc, base, "report under gossip chaos")
        checks.expect(sim.violations == [], "zero double-owner windows")
        checks.expect(sim.tick_errors == [], "no tick ever raised")
    return _result(
        "gossip-chaos", seed, plan, "recovered", checks,
        "delayed/reordered/duplicated gossip absorbed; no false death",
        backend=backend,
    )


def cluster_scenario_gray_failure(
    seed: int, backend: str = "thread"
) -> ScenarioResult:
    """A gray-failing node: alive and gossiping, but its measured RTTs
    are pathological. The suspicion score's RTT term hands it off well
    before the pure-silence deadline would; after the weather clears,
    it re-asserts itself and the cluster re-converges."""
    spec = _zoo("paper-rho2")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    victim = "n3"
    survivors = ["n1", "n2"]
    plan = FaultPlan(seed=seed)
    # Suppress the survivors' *outbound* contacts to the victim: under
    # sim time those would measure rtt=0 and mask the gray signal. The
    # victim's own inbound gossip still refreshes the survivors' view
    # of it — it is alive and talking, just (as modeled below) slow.
    plan.add("cluster.gossip", op="drop", times=None, match=victim)
    with NetSim(nodes=3, seed=seed, backend=backend,
                suspect_after=2.0) as sim:
        checks.expect(sim.converge() >= 0, "ring converged after boot")
        rounds_to_death = None
        with injected(plan):
            for attempt in range(sim.suspect_rounds):
                sim.tick_round()
                for node_id in survivors:
                    # The gray signal: every observed round trip to the
                    # victim takes a full simulated second.
                    sim.servers[node_id].cluster.note_rtt(victim, 1.0)
                if any(sim.peer_view(s, victim) == "dead"
                       for s in survivors):
                    rounds_to_death = attempt + 1
                    break
        checks.expect(rounds_to_death is not None,
                      "the slow-but-alive node was declared dead")
        checks.expect(
            rounds_to_death is not None
            and rounds_to_death < sim.suspect_rounds // 2,
            f"RTT suspicion fired early (round {rounds_to_death}, "
            f"silence alone needs {sim.suspect_rounds})",
        )
        suspect = next(
            (
                row
                for row in sim.servers["n1"].cluster.stats()["peers"]
                if row["node"] == victim
            ),
            None,
        )
        checks.expect(
            suspect is not None and suspect["rtt_ms"] > 500.0,
            "stats expose the pathological RTT EWMA",
        )
        healed = sim.converge(max_rounds=160)
        checks.expect(healed >= 0,
                      "the gray node re-asserted and the ring re-converged")
        doc = sim.client().submit_trace(
            events, _ANALYSES, name=spec.name, batch=4,
            session_id="drill-net-gray", deadline=DRILL_DEADLINE,
        )
        _agrees(checks, doc, base, "report after the gray weather cleared")
        checks.expect(sim.tick_errors == [], "no tick ever raised")
    return _result(
        "gray-failure", seed, plan, "recovered", checks,
        "slow-but-alive node handed off by RTT suspicion before the "
        "silence deadline; re-converged after", backend=backend,
    )


def cluster_scenario_overload_shed(
    seed: int, backend: str = "thread"
) -> ScenarioResult:
    """A tenant over its inflight quota is shed with a paced ``BUSY``
    (``retry_ms`` hint, ``shed`` marker, counted in stats) — and the
    stream still completes to the offline report once the pressure
    clears."""
    from ..service import BusyError, ServiceClient

    spec = _zoo("paper-rho1")
    base = _offline_doc(spec)
    events = list(spec.trace())
    checks = _Checks()
    plan = FaultPlan(seed=seed)  # no faults: the overload is organic
    quota = 2
    with NetSim(nodes=2, seed=seed, backend=backend,
                tenant_quota=quota) as sim:
        checks.expect(sim.converge() >= 0, "ring converged after boot")
        session_id = "drill-net-shed"
        sim.track(session_id)
        client = sim.client()
        half = max(4, len(events) // 2)
        info = client.submit_trace(
            events, _ANALYSES, name=spec.name, batch=4,
            session_id=session_id, stop_after=half, checkpoint=True,
            deadline=DRILL_DEADLINE,
        )
        checks.expect(bool(info.get("open")), "first half streamed")
        host = sim.find_host(session_id)
        checks.expect(host is not None, "the session has a live host")
        router = sim.servers[host].router
        # Model a backed-up tenant deterministically: pin its inflight
        # count at the quota, then feed once more.
        with router._inflight_lock:
            router._inflight[session_id] = quota
        try:
            try:
                router.feed(session_id, [], base=half)
                checks.expect(False, "the over-quota feed was shed")
            except BusyError as error:
                checks.expect(getattr(error, "shed", False) is True,
                              "the BUSY is marked as load shedding")
                checks.expect(
                    (getattr(error, "retry_ms", None) or 0) >= 25,
                    "the BUSY carries a retry_after pacing hint",
                )
        finally:
            with router._inflight_lock:
                router._inflight.pop(session_id, None)
        checks.expect(router.shed_total >= 1, "the router counted the shed")
        doc = client.submit_trace(
            events, _ANALYSES, name=spec.name, batch=4,
            session_id=session_id, resume=True, deadline=DRILL_DEADLINE,
        )
        _agrees(checks, doc, base, "report after the pressure cleared")
        server = sim.servers[host]
        with ServiceClient(server.host, server.port,
                           deadline=DRILL_DEADLINE) as stats_client:
            stats = stats_client.stats()
        checks.expect(stats.get("shed", 0) >= 1, "stats expose the shed count")
        checks.expect(sim.violations == [], "zero double-owner windows")
        checks.expect(sim.tick_errors == [], "no tick ever raised")
    return _result(
        "overload-shed", seed, plan, "recovered", checks,
        "over-quota tenant shed with a paced BUSY; stream completed "
        "once the pressure cleared", backend=backend,
    )


CLUSTER_SCENARIOS = {
    "partition-two-way": cluster_scenario_partition_two_way,
    "partition-one-way": cluster_scenario_partition_one_way,
    "gossip-chaos": cluster_scenario_gossip_chaos,
    "gray-failure": cluster_scenario_gray_failure,
    "overload-shed": cluster_scenario_overload_shed,
}


def run_cluster_scenario(
    name: str, seed: int = DEFAULT_SEED, backend: str = "thread"
) -> ScenarioResult:
    """Run one named cluster drill (``KeyError`` on an unknown name)."""
    return CLUSTER_SCENARIOS[name](seed, backend=backend)


def run_cluster_all(
    seed: int = DEFAULT_SEED, backend: str = "thread"
) -> List[ScenarioResult]:
    """Run the whole cluster matrix, in a stable order."""
    return [
        CLUSTER_SCENARIOS[name](seed, backend=backend)
        for name in CLUSTER_SCENARIOS
    ]
