"""Benchmark harness regenerating the paper's Tables 1 and 2."""

from .memory import (
    GrowthPoint,
    format_growth,
    growth_ratio,
    sample_state_growth,
)
from .harness import (
    RowResult,
    ScalingPoint,
    TimedRun,
    run_case,
    run_scaling,
    run_table,
    run_timed,
)
from .reporting import format_comparison, format_scaling, format_table

__all__ = [
    "GrowthPoint",
    "sample_state_growth",
    "growth_ratio",
    "format_growth",
    "TimedRun",
    "RowResult",
    "ScalingPoint",
    "run_timed",
    "run_case",
    "run_table",
    "run_scaling",
    "format_table",
    "format_comparison",
    "format_scaling",
]
