"""Frozen seed baseline: the pre-packed-trace checker, verbatim.

``BENCH_PR1.json``'s headline speedups are measured against *the seed
string path* — the checker and vector clock exactly as they were in the
seed commit, before the packed-trace fast path landed. Measuring against
the live string adapter would understate the win (the adapter shares the
reworked core) and drift as the core evolves; this module pins the
baseline instead, the way a performance PR pins its "before" build.

Nothing here is exported for analysis use. The only consumer is
:mod:`repro.bench.perf`. Do not "fix" or optimize this file: its value
is that it does not change.

Contents are the seed revisions of ``core/vector_clock.py`` (list-backed
clocks) and ``core/aerodrome_opt.py`` (string-keyed optimized AeroDrome),
renamed with a ``Seed`` prefix and rewired to use the frozen clock.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.checker import StreamingChecker
from ..core.violations import Violation
from ..trace.events import Event, Op

class SeedVectorClock:
    """A mutable vector time.

    The in-place operations (:meth:`join`, :meth:`set_component`,
    :meth:`increment`, :meth:`assign`) are the workhorses of the analysis
    loops; the functional variants (:meth:`joined`, :meth:`with_component`)
    are for tests and expository code.
    """

    __slots__ = ("_times",)

    def __init__(self, times: Iterable[int] = ()) -> None:
        self._times: List[int] = list(times)
        if any(t < 0 for t in self._times):
            raise ValueError("vector times are non-negative")

    # -- constructors --------------------------------------------------------

    @classmethod
    def bottom(cls, size: int = 0) -> "SeedVectorClock":
        """The minimum time ⊥ (all zeros)."""
        return cls([0] * size)

    @classmethod
    def unit(cls, thread: int, value: int = 1, size: int = 0) -> "SeedVectorClock":
        """⊥[value/thread] — the initial clock C_t = ⊥[1/t]."""
        clock = cls.bottom(max(size, thread + 1))
        clock._times[thread] = value
        return clock

    def copy(self) -> "SeedVectorClock":
        clock = SeedVectorClock.__new__(SeedVectorClock)
        clock._times = self._times[:]
        return clock

    # -- component access ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def get(self, thread: int) -> int:
        """Component ``V(thread)`` (0 if beyond the stored length)."""
        if thread < len(self._times):
            return self._times[thread]
        return 0

    def _grow(self, size: int) -> None:
        if size > len(self._times):
            self._times.extend([0] * (size - len(self._times)))

    def set_component(self, thread: int, value: int) -> None:
        """In-place ``V(thread) := value``."""
        if value < 0:
            raise ValueError("vector times are non-negative")
        self._grow(thread + 1)
        self._times[thread] = value

    def increment(self, thread: int, amount: int = 1) -> None:
        """In-place ``V(thread) := V(thread) + amount``."""
        self._grow(thread + 1)
        self._times[thread] += amount

    def assign(self, other: "SeedVectorClock") -> None:
        """In-place copy: ``V := other``."""
        self._times[:] = other._times

    # -- lattice operations ----------------------------------------------------

    def leq(self, other: "SeedVectorClock") -> bool:
        """The partial order ``self ⊑ other``."""
        mine = self._times
        theirs = other._times
        if len(mine) <= len(theirs):
            for a, b in zip(mine, theirs):
                if a > b:
                    return False
            return True
        for i, a in enumerate(mine):
            b = theirs[i] if i < len(theirs) else 0
            if a > b:
                return False
        return True

    def join(self, other: "SeedVectorClock") -> None:
        """In-place join: ``V := V ⊔ other``."""
        theirs = other._times
        self._grow(len(theirs))
        mine = self._times
        for i, b in enumerate(theirs):
            if b > mine[i]:
                mine[i] = b

    def joined(self, other: "SeedVectorClock") -> "SeedVectorClock":
        """Functional join: ``V ⊔ other`` as a new clock."""
        result = self.copy()
        result.join(other)
        return result

    def with_component(self, thread: int, value: int) -> "SeedVectorClock":
        """Functional ``V[value/thread]`` as a new clock."""
        result = self.copy()
        result.set_component(thread, value)
        return result

    def zeroed(self, thread: int) -> "SeedVectorClock":
        """``V[0/thread]`` — used by the check-read clock hR_x (App. C.1)."""
        return self.with_component(thread, 0)

    def is_bottom(self) -> bool:
        return not any(self._times)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedVectorClock):
            return NotImplemented
        mine, theirs = self._times, other._times
        if len(mine) < len(theirs):
            mine, theirs = theirs, mine
        return mine[: len(theirs)] == theirs and not any(mine[len(theirs):])

    def __hash__(self) -> int:
        times = self._times[:]
        while times and times[-1] == 0:
            times.pop()
        return hash(tuple(times))

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self._times)
        return f"⟨{inner}⟩"

    def as_tuple(self) -> tuple:
        return tuple(self._times)




class _SeedThreadState:
    """Per-thread analysis state (C_t, C⊲_t, nesting, update sets)."""

    __slots__ = (
        "index",
        "name",
        "clock",
        "begin_clock",
        "depth",
        "txn_serial",
        "update_reads",
        "update_writes",
        "parent_txn",
    )

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.clock = SeedVectorClock.unit(index)
        self.begin_clock = SeedVectorClock.bottom()
        self.depth = 0
        #: Serial number of the current/most recent outermost transaction;
        #: used to test whether the forking parent's transaction is alive.
        self.txn_serial = 0
        self.update_reads: Set["_SeedVarState"] = set()
        self.update_writes: Set["_SeedVarState"] = set()
        #: (parent thread state, parent txn serial) recorded at fork time,
        #: None when the parent was not inside a transaction.
        self.parent_txn: Optional[Tuple["_SeedThreadState", int]] = None

    @property
    def active(self) -> bool:
        return self.depth > 0

    def has_active_txn_with_serial(self, serial: int) -> bool:
        return self.depth > 0 and self.txn_serial == serial


class _SeedVarState:
    """Per-variable analysis state (W_x, R_x, hR_x, staleness)."""

    __slots__ = (
        "name",
        "write_clock",
        "last_w_thr",
        "read_clock",
        "check_read_clock",
        "stale_readers",
        "stale_write",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.write_clock = SeedVectorClock.bottom()  # W_x
        self.last_w_thr: Optional[_SeedThreadState] = None  # lastWThr_x
        self.read_clock = SeedVectorClock.bottom()  # R_x
        self.check_read_clock = SeedVectorClock.bottom()  # hR_x
        self.stale_readers: Set[_SeedThreadState] = set()  # Stale^r_x
        self.stale_write = False  # Stale^w_x


class _SeedLockState:
    """Per-lock analysis state (L_ℓ, lastRelThr_ℓ)."""

    __slots__ = ("name", "clock", "last_rel_thr")

    def __init__(self, name: str) -> None:
        self.name = name
        self.clock = SeedVectorClock.bottom()  # L_ℓ
        self.last_rel_thr: Optional[_SeedThreadState] = None


class SeedOptimizedAeroDromeChecker(StreamingChecker):
    """AeroDrome with all Appendix C optimizations (the default checker)."""

    algorithm = "aerodrome-seed"

    def __init__(self) -> None:
        super().__init__()
        self._threads: Dict[str, _SeedThreadState] = {}
        self._thread_list: List[_SeedThreadState] = []
        self._vars: Dict[str, _SeedVarState] = {}
        self._locks: Dict[str, _SeedLockState] = {}

    # -- state helpers -------------------------------------------------------

    def _thread(self, name: str) -> _SeedThreadState:
        state = self._threads.get(name)
        if state is None:
            state = _SeedThreadState(len(self._thread_list), name)
            self._threads[name] = state
            self._thread_list.append(state)
        return state

    def _var(self, name: str) -> _SeedVarState:
        state = self._vars.get(name)
        if state is None:
            state = _SeedVarState(name)
            self._vars[name] = state
        return state

    def _lock(self, name: str) -> _SeedLockState:
        state = self._locks.get(name)
        if state is None:
            state = _SeedLockState(name)
            self._locks[name] = state
        return state

    @staticmethod
    def _begin_leq(ts: _SeedThreadState, clk: SeedVectorClock) -> bool:
        """``C⊲_t ⊑ clk`` via the O(1) local-component invariant."""
        return ts.begin_clock.get(ts.index) <= clk.get(ts.index)

    def _check_and_get(
        self,
        check_clk: SeedVectorClock,
        join_clk: SeedVectorClock,
        ts: _SeedThreadState,
        event: Event,
        site: str,
    ) -> Optional[Violation]:
        """``checkAndGet(clk1, clk2, t)`` of Algorithm 3."""
        violation: Optional[Violation] = None
        if ts.active and self._begin_leq(ts, check_clk):
            violation = Violation(
                event_idx=event.idx,
                thread=ts.name,
                site=site,
                details=f"C⊲_{ts.name} ⊑ {check_clk!r} with an active transaction",
            )
        ts.clock.join(join_clk)
        return violation

    # -- lazy-clock plumbing ---------------------------------------------------

    def _flush_stale_readers(self, xs: _SeedVarState) -> None:
        """Fold pending lazy reads into R_x and hR_x (Alg. 3 lines 43-46)."""
        for reader in xs.stale_readers:
            xs.read_clock.join(reader.clock)
            # hR_x excludes each reader's own component so that a thread's
            # own reads never satisfy its write-time check.
            saved = reader.clock.get(reader.index)
            reader.clock.set_component(reader.index, 0)
            xs.check_read_clock.join(reader.clock)
            reader.clock.set_component(reader.index, saved)
        xs.stale_readers.clear()

    def _register_dependents(
        self, ts: _SeedThreadState, xs: _SeedVarState, kind: str
    ) -> None:
        """Record which active transactions this access is ⋖E-after
        (Alg. 3 lines 34-36 / 50-52): at their end events, x's clocks
        must be refreshed."""
        clock = ts.clock
        for u in self._thread_list:
            if u.active and u.begin_clock.get(u.index) <= clock.get(u.index):
                if kind == "r":
                    u.update_reads.add(xs)
                else:
                    u.update_writes.add(xs)

    # -- event handlers ------------------------------------------------------

    def _acquire(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        ls = self._lock(event.target)  # type: ignore[arg-type]
        # Note: after garbage collection lastRelThr_ℓ is NIL but L_ℓ still
        # holds the (eagerly maintained) last-release timestamp, and the
        # check must run — NIL ≠ t in the paper's line 18.
        if ls.last_rel_thr is not ts:
            return self._check_and_get(ls.clock, ls.clock, ts, event, "acquire")
        return None

    def _release(self, ts: _SeedThreadState, event: Event) -> None:
        ls = self._lock(event.target)  # type: ignore[arg-type]
        ls.clock = ts.clock.copy()
        ls.last_rel_thr = ts

    def _fork(self, ts: _SeedThreadState, event: Event) -> None:
        child = self._thread(event.target)  # type: ignore[arg-type]
        child.clock.join(ts.clock)
        if ts.active:
            child.parent_txn = (ts, ts.txn_serial)

    def _join(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        child = self._thread(event.target)  # type: ignore[arg-type]
        return self._check_and_get(child.clock, child.clock, ts, event, "join")

    def _read(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        xs = self._var(event.target)  # type: ignore[arg-type]
        writer = xs.last_w_thr
        if writer is not None and writer is not ts:
            if xs.stale_write:
                # The last write sits in the writer's still-active
                # transaction; its thread clock stands in for W_x.
                violation = self._check_and_get(
                    writer.clock, writer.clock, ts, event, "read"
                )
            else:
                violation = self._check_and_get(
                    xs.write_clock, xs.write_clock, ts, event, "read"
                )
            if violation is not None:
                return violation
        if ts.active:
            xs.stale_readers.add(ts)
        else:
            # Unary read: flush eagerly — the lazy substitution of the
            # thread clock for the event clock is only valid while the
            # access's transaction is still the thread's active one.
            xs.read_clock.join(ts.clock)
            saved = ts.clock.get(ts.index)
            ts.clock.set_component(ts.index, 0)
            xs.check_read_clock.join(ts.clock)
            ts.clock.set_component(ts.index, saved)
        self._register_dependents(ts, xs, "r")
        return None

    def _write(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        xs = self._var(event.target)  # type: ignore[arg-type]
        writer = xs.last_w_thr
        if writer is not None and writer is not ts:
            if xs.stale_write:
                violation = self._check_and_get(
                    writer.clock, writer.clock, ts, event, "write-write"
                )
            else:
                violation = self._check_and_get(
                    xs.write_clock, xs.write_clock, ts, event, "write-write"
                )
            if violation is not None:
                return violation
        self._flush_stale_readers(xs)
        violation = self._check_and_get(
            xs.check_read_clock, xs.read_clock, ts, event, "write-read"
        )
        if violation is not None:
            return violation
        if ts.active:
            xs.stale_write = True
        else:
            # Unary write: publish the timestamp eagerly.
            xs.write_clock = ts.clock.copy()
            xs.stale_write = False
        xs.last_w_thr = ts
        self._register_dependents(ts, xs, "w")
        return None

    def _begin(self, ts: _SeedThreadState, event: Event) -> None:
        ts.depth += 1
        if ts.depth > 1:
            return  # nested begin
        ts.txn_serial += 1
        ts.clock.increment(ts.index)
        ts.begin_clock = ts.clock.copy()

    def _has_incoming_edge(self, ts: _SeedThreadState) -> bool:
        """Whether the ending transaction may participate in a future cycle.

        The paper's Algorithm 3 tests whether the forking parent's
        transaction is still alive or some non-local clock component grew
        since the begin event (``C⊲_t[0/t] ≠ C_t[0/t]``). That test alone
        is *insufficient*: clock components count transactions, so
        re-observing a long-lived, still-open transaction (whose begin
        was already visible before this transaction started) grows
        nothing, yet creates a real incoming ⋖Txn edge — garbage
        collecting here loses genuine violations (see
        ``tests/test_gc_soundness.py`` for the counterexample, and
        EXPERIMENTS.md §Deviations). We therefore additionally keep the
        transaction whenever its final clock covers the begin of any
        still-active transaction of another thread: any cycle detected
        later must route through a transaction that was active
        throughout this window, and its begin timestamp would already be
        ⊑ ``C_t`` here.
        """
        if ts.parent_txn is not None:
            parent, serial = ts.parent_txn
            if parent.has_active_txn_with_serial(serial):
                return True
        begin, now = ts.begin_clock, ts.clock
        for u in self._thread_list:
            if u is ts:
                continue
            if begin.get(u.index) != now.get(u.index):
                return True
            if u.active and u.begin_clock.get(u.index) <= now.get(u.index):
                return True
        return False

    def _end(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        if ts.depth == 0:
            raise ValueError(
                f"end without matching begin at event {event.idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        if ts.depth > 1:
            ts.depth -= 1
            return None  # nested end

        if self._has_incoming_edge(ts):
            violation = self._end_propagate(ts, event)
            if violation is not None:
                return violation
        else:
            self._end_garbage_collect(ts)
        ts.depth = 0
        # The fork-edge from the parent is consumed by the first
        # transaction; subsequent transactions of this thread are related
        # to the parent only through the clocks.
        ts.parent_txn = None
        return None

    def _end_propagate(self, ts: _SeedThreadState, event: Event) -> Optional[Violation]:
        """Normal end handling (Alg. 3 lines 58-73)."""
        begin = ts.begin_clock
        clock = ts.clock
        for u in self._thread_list:
            if u is not ts and begin.get(ts.index) <= u.clock.get(ts.index):
                violation = self._check_and_get(clock, clock, u, event, "end")
                if violation is not None:
                    return violation
        for ls in self._locks.values():
            if begin.get(ts.index) <= ls.clock.get(ts.index):
                ls.clock.join(clock)
        for xs in ts.update_writes:
            if not xs.stale_write or xs.last_w_thr is ts:
                xs.write_clock.join(clock)
            if xs.last_w_thr is ts:
                xs.stale_write = False
        ts.update_writes = set()
        saved = clock.get(ts.index)
        for xs in ts.update_reads:
            xs.read_clock.join(clock)
            clock.set_component(ts.index, 0)
            xs.check_read_clock.join(clock)
            clock.set_component(ts.index, saved)
            xs.stale_readers.discard(ts)
        ts.update_reads = set()
        return None

    def _end_garbage_collect(self, ts: _SeedThreadState) -> None:
        """GC end handling (Alg. 3 lines 75-86): the transaction has no
        incoming edge, so it can never be on a cycle — drop its pending
        lazy updates instead of propagating them."""
        for xs in ts.update_reads:
            xs.stale_readers.discard(ts)
        ts.update_reads = set()
        for xs in ts.update_writes:
            if xs.last_w_thr is ts:
                xs.stale_write = False
                xs.last_w_thr = None
        ts.update_writes = set()
        for ls in self._locks.values():
            if ls.last_rel_thr is ts:
                ls.last_rel_thr = None

    def state_summary(self) -> Dict[str, int]:
        """Clock counts after the Algorithm 2 reduction: three clocks
        per variable (W/R/hR) regardless of thread count."""
        return {
            "events_processed": self.events_processed,
            "thread_clocks": 2 * len(self._thread_list),
            "lock_clocks": len(self._locks),
            "write_clocks": len(self._vars),
            "read_clocks": 2 * len(self._vars),  # R_x and hR_x
            "total_clocks": 2 * len(self._thread_list)
            + len(self._locks)
            + 3 * len(self._vars),
        }

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event (see :class:`StreamingChecker`)."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        ts = self._thread(event.thread)
        op = event.op
        violation: Optional[Violation]
        if op is Op.READ:
            violation = self._read(ts, event)
        elif op is Op.WRITE:
            violation = self._write(ts, event)
        elif op is Op.ACQUIRE:
            violation = self._acquire(ts, event)
        elif op is Op.RELEASE:
            self._release(ts, event)
            violation = None
        elif op is Op.BEGIN:
            self._begin(ts, event)
            violation = None
        elif op is Op.END:
            violation = self._end(ts, event)
        elif op is Op.FORK:
            self._fork(ts, event)
            violation = None
        elif op is Op.JOIN:
            violation = self._join(ts, event)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation
