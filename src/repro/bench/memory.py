"""State-growth measurement — Theorem 4's space bound, observed.

The paper's space claim is that AeroDrome keeps
O(|Thr|·(|Thr| + V + L)) vector clocks *independent of trace length*,
while Velodrome's live transaction graph can grow with the trace
(garbage collection fights this but loses whenever transactions keep
incoming edges — exactly the Table 1 coordinator shape). This module
samples each checker's :meth:`state_summary` along a trace so that the
contrast is a table instead of a sentence:

    >>> growth = sample_state_growth(trace, "velodrome-nogc", samples=8)
    >>> [point.state["live_nodes"] for point in growth]   # grows
    >>> growth = sample_state_growth(trace, "aerodrome", samples=8)
    >>> [point.state["total_clocks"] for point in growth] # plateaus

``tests/test_state_summary.py`` asserts the shape; the
``examples/checkpoint_streaming.py`` walkthrough shows the checkpoint
payload (a serialization of the same state) staying flat for the same
reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..api.registry import make_checker
from ..trace.trace import Trace


@dataclass(frozen=True)
class GrowthPoint:
    """One sample of a checker's live state.

    Attributes:
        events: Stream position at which the sample was taken.
        state: The checker's :meth:`state_summary` at that position.
    """

    events: int
    state: Dict[str, int]


def sample_state_growth(
    trace: Trace,
    algorithm: str = "aerodrome",
    samples: int = 10,
    stop_at_violation: bool = False,
) -> List[GrowthPoint]:
    """Run ``algorithm`` over ``trace``, sampling state ``samples`` times.

    Sampling points are evenly spaced over the trace; the final point is
    always included. With ``stop_at_violation=False`` (default) the
    checker keeps running past violations (report-and-continue) so the
    growth curve covers the whole trace — state growth is the question
    here, not the verdict.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    n = len(trace)
    step = max(1, n // samples)
    checkpoints = {min(n, k * step) for k in range(1, samples + 1)}
    checkpoints.add(n)
    checker = make_checker(algorithm)
    points: List[GrowthPoint] = []
    for event in trace:
        violation = checker.process(event)
        if violation is not None:
            if stop_at_violation:
                break
            checker.violation = None
        if checker.events_processed in checkpoints:
            points.append(
                GrowthPoint(checker.events_processed, checker.state_summary())
            )
    if not points or points[-1].events != checker.events_processed:
        points.append(
            GrowthPoint(checker.events_processed, checker.state_summary())
        )
    return points


def growth_ratio(points: Sequence[GrowthPoint], key: str) -> float:
    """How much ``key`` grew between the first and last sample.

    1.0 means flat; proportional growth tracks the event ratio. Returns
    ``inf`` when the first sample is zero and the last is not.
    """
    if not points:
        raise ValueError("no samples")
    first = points[0].state.get(key, 0)
    last = points[-1].state.get(key, 0)
    if first == 0:
        return float("inf") if last else 1.0
    return last / first


def format_growth(points: Sequence[GrowthPoint]) -> str:
    """Render samples as an aligned ASCII table (CLI/report helper)."""
    if not points:
        return "(no samples)"
    keys = [k for k in points[0].state if k != "events_processed"]
    header = f"{'events':>10}" + "".join(f"{k:>14}" for k in keys)
    lines = [header, "-" * len(header)]
    for point in points:
        row = f"{point.events:>10}"
        for key in keys:
            row += f"{point.state.get(key, 0):>14}"
        lines.append(row)
    return "\n".join(lines)
