"""Throughput benchmark: packed+epoch fast path vs. the seed string path.

This is the harness behind ``repro bench`` and
``benchmarks/perf_harness.py``. For every workload it generates the
trace once, compiles it once with :func:`repro.trace.packed.pack`, and
then times three checkers on identical input:

* ``seed`` — :class:`repro.bench.seed_baseline.SeedOptimizedAeroDromeChecker`,
  the frozen pre-packed-trace implementation (list-backed clocks,
  per-event string interning). This is the "before" build every speedup
  is quoted against.
* ``string`` — the current :func:`~repro.core.checker.make_checker`
  checker fed string events through its adapter ``process`` API.
* ``packed`` — the same checker consuming the packed trace through
  ``run_packed``.

On top of the analyze-phase columns, every workload row measures the
**cold-start (ingest) split** — text parse, pack, the fused
text→packed parser, and a ``repro-packed/1`` ``load_packed`` mmap
(:mod:`repro.trace.packed_io`) — and the **process-parallel session**
comparison: ``Session.run(jobs=1)`` vs ``Session.run(jobs=N)`` on the
same co-run analysis set (:mod:`repro.api.parallel`). A top-level
**service block** additionally streams one workload through a live
loopback ``repro serve`` daemon (:mod:`repro.service`) at 1 and 8
concurrent sessions, comparing every streamed report against the
offline session (the agreement flags CI gates on).

Each measurement is best-of-``repeats`` wall time on a fresh checker;
tiny traces are looped until a run lasts long enough to time (the loop
count divides out). Verdicts and violating event indices are
cross-checked across all paths — including the reloaded and re-parsed
traces and the parallel reports — a disagreement marks the run
``agree: false`` and fails ``--check`` mode, which is what CI's
benchmark smoke gates on.

The output (``BENCH_PR8.json`` by default, schema ``repro-bench/5``)
is documented in ``docs/PERF.md``.
"""

from __future__ import annotations

import json
import math
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..api.registry import create_analysis, make_checker
from ..api.session import Session
from ..sim.workloads.benchmarks import TABLE1, TABLE2, CASES_BY_NAME
from ..trace.packed import PackedTrace, pack
from ..trace.packed_io import load_packed, parse_packed, save_packed
from ..trace.parser import load_trace
from ..trace.trace import Trace
from ..trace.writer import save_trace
from .seed_baseline import SeedOptimizedAeroDromeChecker

#: Analyses co-run in the one-pass vs N-pass session comparison: the
#: checker under test plus the two streaming extension analyses.
SESSION_EXTRAS = ("races", "lockset")

#: Analyses co-run in the serial-vs-parallel session comparison: the
#: checker under test plus five roughly cost-balanced co-analyses, so a
#: balanced partition exists for the workers to exploit.
PARALLEL_EXTRAS = ("doublechecker", "atomizer", "races", "lockset", "profile")

#: Schema tag stamped into every report.
SCHEMA = "repro-bench/5"

#: Server front ends the service block measures (same wire, same
#: router; one handler thread per connection vs one selectors loop).
SERVICE_BACKENDS = ("thread", "async")

#: Analyses streamed in the service benchmark block.
SERVICE_ANALYSES = ("aerodrome", "races", "lockset")

#: Concurrent-session counts measured by the service block.
SERVICE_SESSIONS = (1, 8)

#: Ring sizes compared by the cluster block (1-node vs 3-node loopback).
CLUSTER_NODE_COUNTS = (1, 3)

#: Sessions streamed through each ring by the cluster block.
CLUSTER_SESSIONS = 4

#: A timed run should last at least this long; shorter traces are
#: looped (fresh checker per iteration, loop count divided out).
_MIN_SECONDS = 0.02

#: Default scaling sweep sizes (events), run on the raytracer shape.
SCALING_SIZES = (4_000, 16_000, 64_000)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed_eps(make_run, events: int, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` timing with automatic looping for tiny traces.

    ``make_run`` returns a zero-argument callable (a fresh checker bound
    to its input); construction happens outside the timed region. Traces
    too short to time reliably are run in batches of ``iters`` fresh
    checkers per measurement, and the batch size divides out.
    """
    import gc

    gc_was_enabled = gc.isenabled()
    gc.disable()  # collector pauses are the dominant timing noise here
    try:
        run = make_run()
        start = time.perf_counter()
        run()
        best = time.perf_counter() - start
        iters = 1
        while best * iters < _MIN_SECONDS and iters < 1024:
            iters *= 2
        remaining = repeats - 1 if iters == 1 else repeats
        if iters > 1:
            best = math.inf
        for _ in range(remaining):
            runs = [make_run() for _ in range(iters)]
            gc.collect()
            start = time.perf_counter()
            for batched in runs:
                batched()
            elapsed = (time.perf_counter() - start) / iters
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"seconds": best, "eps": events / best if best > 0 else math.inf}


def _violation_idx(result) -> Optional[int]:
    return result.violation.event_idx if result.violation is not None else None


def bench_case(
    name: str,
    trace: Trace,
    packed: PackedTrace,
    algorithm: str = "aerodrome",
    repeats: int = 3,
) -> Dict:
    """Time the three paths on one pre-generated trace."""
    events = list(trace.events)

    seed_result = SeedOptimizedAeroDromeChecker().run(events)
    string_result = make_checker(algorithm).run(iter(events))
    packed_result = make_checker(algorithm).run_packed(packed)

    agree = (
        seed_result.serializable
        == string_result.serializable
        == packed_result.serializable
    ) and (
        _violation_idx(seed_result)
        == _violation_idx(string_result)
        == _violation_idx(packed_result)
    )
    n = seed_result.events_processed

    seed = _timed_eps(
        lambda: (lambda c=SeedOptimizedAeroDromeChecker(): c.run(events)),
        n, repeats,
    )
    string = _timed_eps(
        lambda: (lambda c=make_checker(algorithm): c.run(iter(events))),
        n, repeats,
    )
    fast = _timed_eps(
        lambda: (lambda c=make_checker(algorithm): c.run_packed(packed)),
        n, repeats,
    )

    return {
        "name": name,
        "events": len(events),
        "events_processed": n,
        "threads": len(packed.thread_names),
        "variables": len(packed.variable_names),
        "locks": len(packed.lock_names),
        "packed_bytes": packed.nbytes(),
        "serializable": packed_result.serializable,
        "violation_idx": _violation_idx(packed_result),
        "agree": agree,
        "seed_seconds": seed["seconds"],
        "string_seconds": string["seconds"],
        "packed_seconds": fast["seconds"],
        "seed_eps": seed["eps"],
        "string_eps": string["eps"],
        "packed_eps": fast["eps"],
        "speedup_vs_seed": seed["seconds"] / fast["seconds"],
        "speedup_vs_string": string["seconds"] / fast["seconds"],
    }


def bench_session(
    packed: PackedTrace,
    algorithm: str = "aerodrome",
    repeats: int = 3,
) -> Dict:
    """One-pass vs N-pass: co-run K analyses on one sweep, or K sweeps.

    Both sides consume the same :class:`PackedTrace`. The N-pass side
    runs one single-analysis session per analysis (so the checker gets
    its own inlined hot loop); the one-pass side co-runs them all on a
    single shared sweep — the ``repro.api`` session's whole point.
    """
    names = (algorithm,) + SESSION_EXTRAS
    events = len(packed)

    def make_onepass():
        session = Session(packed, [create_analysis(n) for n in names])
        return session.run

    def make_npass():
        sessions = [Session(packed, [create_analysis(n)]) for n in names]

        def run_all():
            for session in sessions:
                session.run()

        return run_all

    onepass = _timed_eps(make_onepass, events, repeats)
    npass = _timed_eps(make_npass, events, repeats)
    return {
        "analyses": list(names),
        "onepass_seconds": onepass["seconds"],
        "npass_seconds": npass["seconds"],
        "onepass_speedup": npass["seconds"] / onepass["seconds"]
        if onepass["seconds"] > 0
        else math.inf,
    }


def bench_ingest(
    trace: Trace,
    packed: PackedTrace,
    workdir: Path,
    algorithm: str = "aerodrome",
    repeats: int = 3,
) -> Dict:
    """Cold-start split: every route from disk to an analyzable trace.

    Writes the workload once as ``.std`` text and once as
    ``repro-packed/1``, then times (best-of-``repeats``):

    * ``parse_seconds`` — text → string :class:`Trace` (the seed route);
    * ``pack_seconds`` — :class:`Trace` → :class:`PackedTrace`;
      ``parse_seconds + pack_seconds`` is the full cold start every
      pre-PR4 run paid;
    * ``parse_packed_seconds`` — the fused text→packed parser (no
      ``Event`` objects);
    * ``load_seconds`` — ``load_packed`` mmap of the ``.rpt`` file
      (O(string tables), not O(events));

    plus the one-time ``save_seconds``, and re-runs the checker on the
    reloaded and re-parsed traces to prove they analyze identically
    (the row's ``agree`` flag).
    """
    n = len(trace)
    std_path = workdir / "ingest.std"
    rpt_path = workdir / "ingest.rpt"
    save_trace(trace, std_path)
    save_start = time.perf_counter()
    save_packed(packed, rpt_path)
    save_seconds = time.perf_counter() - save_start

    parse = _timed_eps(lambda: (lambda: load_trace(std_path)), n, repeats)
    pack_t = _timed_eps(lambda: (lambda: pack(trace)), n, repeats)
    fused = _timed_eps(lambda: (lambda: parse_packed(std_path)), n, repeats)
    load = _timed_eps(lambda: (lambda: load_packed(rpt_path)), n, repeats)

    baseline = make_checker(algorithm).run_packed(packed)
    loaded_result = make_checker(algorithm).run_packed(load_packed(rpt_path))
    fused_result = make_checker(algorithm).run_packed(parse_packed(std_path))
    agree = (
        baseline.serializable
        == loaded_result.serializable
        == fused_result.serializable
    ) and (
        _violation_idx(baseline)
        == _violation_idx(loaded_result)
        == _violation_idx(fused_result)
    )

    parse_pack = parse["seconds"] + pack_t["seconds"]
    return {
        "std_bytes": std_path.stat().st_size,
        "rpt_bytes": rpt_path.stat().st_size,
        "parse_seconds": parse["seconds"],
        "pack_seconds": pack_t["seconds"],
        "parse_pack_seconds": parse_pack,
        "parse_packed_seconds": fused["seconds"],
        "save_seconds": save_seconds,
        "load_seconds": load["seconds"],
        "fused_speedup": parse_pack / fused["seconds"]
        if fused["seconds"] > 0
        else math.inf,
        "cold_start_speedup": parse_pack / load["seconds"]
        if load["seconds"] > 0
        else math.inf,
        "agree": agree,
    }


def bench_parallel(
    packed: PackedTrace,
    algorithm: str = "aerodrome",
    repeats: int = 3,
    jobs: int = 2,
) -> Dict:
    """Serial vs process-parallel co-run of one analysis set.

    Both sides drive the identical analyses over the identical
    :class:`PackedTrace`; the parallel side fans them across ``jobs``
    forked workers (which inherit the packed columns zero-copy) via
    ``Session.run(jobs=...)``. The ``agree`` flag compares the full
    ``repro-report/1`` dict of every analysis across both runs.

    Wall-clock speedup needs real cores: ``cpus`` records what the
    machine offered (on a single-CPU host the honest answer is ~1x).
    """
    names = (algorithm,) + PARALLEL_EXTRAS
    events = len(packed)

    def make_serial():
        session = Session(packed, [create_analysis(n) for n in names])
        return session.run

    def make_parallel():
        session = Session(packed, [create_analysis(n) for n in names])
        return lambda: session.run(jobs=jobs)

    serial_result = Session(packed, [create_analysis(n) for n in names]).run()
    parallel_result = Session(packed, [create_analysis(n) for n in names]).run(
        jobs=jobs
    )
    agree = [r.to_json() for r in serial_result.reports.values()] == [
        r.to_json() for r in parallel_result.reports.values()
    ]

    serial = _timed_eps(make_serial, events, repeats)
    parallel = _timed_eps(make_parallel, events, repeats)
    return {
        "analyses": list(names),
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "parallel_speedup": serial["seconds"] / parallel["seconds"]
        if parallel["seconds"] > 0
        else math.inf,
        "agree": agree,
    }


def bench_service(
    trace: Trace,
    analyses: Iterable[str] = SERVICE_ANALYSES,
    sessions: Iterable[int] = SERVICE_SESSIONS,
    batch: int = 512,
    shards: int = 2,
    backends: Iterable[str] = SERVICE_BACKENDS,
) -> Dict:
    """Streamed-vs-offline throughput + agreement for the service.

    For each connection **backend** (one handler thread per connection
    vs the single-threaded selectors event loop) this starts an
    in-process ``repro serve`` (thread shards, loopback TCP), then for
    each concurrency level streams the workload through that many
    simultaneous sessions and compares every returned
    ``repro-report/1`` document against the offline ``Session.run()``
    on the same trace. The per-backend ``agree`` flags are the
    hardware-independent gate (``--check`` and CI fail on them); the
    events/sec columns only mean something on hardware with idle
    cores — same policy as the ``parallel`` block, recorded in the
    summary note on 1-CPU hosts.
    """
    import threading

    from ..service.client import submit_trace
    from ..service.server import ServiceServer

    names = list(analyses)
    backends = list(backends)
    events = list(trace.events)
    n = len(events)

    # One offline run serves as both the comparison document and the
    # timing baseline (a single whole-trace sweep is long enough to
    # time directly at these sizes).
    offline_start = time.perf_counter()
    offline_result = Session(trace, [create_analysis(a) for a in names]).run()
    offline_seconds = time.perf_counter() - offline_start
    offline_doc = offline_result.to_json()["analyses"]
    offline = {
        "seconds": offline_seconds,
        "eps": n / offline_seconds if offline_seconds > 0 else math.inf,
    }

    rows = []
    for backend in backends:
        with ServiceServer(shards=shards, backend=backend).start() as server:
            for k in sessions:
                docs: List[Optional[Dict]] = [None] * k

                def stream(slot: int) -> None:
                    docs[slot] = submit_trace(
                        server.host, server.port, events, names,
                        name=f"{trace.name}#{slot}", batch=batch,
                        encoding="delta",
                    )

                start = time.perf_counter()
                if k == 1:
                    stream(0)
                else:
                    threads = [
                        threading.Thread(target=stream, args=(slot,))
                        for slot in range(k)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                seconds = time.perf_counter() - start
                agree = all(
                    doc is not None and doc["analyses"] == offline_doc
                    for doc in docs
                )
                rows.append(
                    {
                        "backend": backend,
                        "sessions": k,
                        "events": n * k,
                        "seconds": seconds,
                        "events_per_second": (n * k) / seconds
                        if seconds > 0
                        else math.inf,
                        "agree": agree,
                    }
                )
    return {
        "analyses": names,
        "batch": batch,
        "shards": shards,
        "backends": list(backends),
        "workload": trace.name,
        "offline_eps": offline["eps"],
        "offline_seconds": offline["seconds"],
        "sessions": rows,
        "agree": all(row["agree"] for row in rows),
    }


def bench_cluster(
    trace: Trace,
    analyses: Iterable[str] = SERVICE_ANALYSES,
    batch: int = 512,
    shards: int = 2,
    node_counts: Iterable[int] = CLUSTER_NODE_COUNTS,
    sessions: int = CLUSTER_SESSIONS,
) -> Dict:
    """Ring-routed streaming vs offline: 1-node vs N-node loopback.

    For each ring size this forms an in-process cluster (thread
    backend, loopback TCP, fast gossip), streams ``sessions``
    ring-routed sessions through a :class:`~repro.cluster.ClusterClient`
    and compares every returned report against the offline
    ``Session.run()``. Same policy as the ``service`` block: the
    per-report ``agree`` flags are the hardware-independent gate; the
    events/sec columns only mean something with idle cores — on a
    loopback 1-CPU host the N-node column mostly measures the extra
    gossip and routing hops, which is itself worth recording.
    """
    from ..cluster import ClusterClient
    from ..service.server import ServiceServer

    names = list(analyses)
    events = list(trace.events)
    n = len(events)

    offline_start = time.perf_counter()
    offline_result = Session(trace, [create_analysis(a) for a in names]).run()
    offline_seconds = time.perf_counter() - offline_start
    offline_doc = offline_result.to_json()["analyses"]

    rows = []
    for count in node_counts:
        nodes: List[ServiceServer] = []
        try:
            for i in range(count):
                kwargs: Dict = dict(
                    shards=shards,
                    backend="thread",
                    node_id=f"bench-{i}",
                    gossip_interval=0.1,
                    suspect_after=1.0,
                )
                if nodes:
                    kwargs["join"] = [nodes[0].address]
                else:
                    kwargs["cluster"] = True
                nodes.append(ServiceServer(**kwargs).start())
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if all(
                    len(node.cluster.stats()["ring"]["nodes"]) == count
                    for node in nodes
                ):
                    break
                time.sleep(0.05)
            client = ClusterClient(
                [node.address for node in nodes], jitter_seed=0
            )
            docs = []
            start = time.perf_counter()
            for slot in range(sessions):
                docs.append(
                    client.submit_trace(
                        events, names,
                        name=f"{trace.name}#{slot}", batch=batch,
                        encoding="delta",
                        session_id=f"bench-cluster-{count}-{slot}",
                    )
                )
            seconds = time.perf_counter() - start
            agree = all(doc["analyses"] == offline_doc for doc in docs)
            spread = len(
                {client.ring.owner(f"bench-cluster-{count}-{slot}")
                 for slot in range(sessions)}
            )
            rows.append(
                {
                    "nodes": count,
                    "sessions": sessions,
                    "owners_hit": spread,
                    "events": n * sessions,
                    "seconds": seconds,
                    "events_per_second": (n * sessions) / seconds
                    if seconds > 0
                    else math.inf,
                    "agree": agree,
                }
            )
        finally:
            for node in nodes:
                node.stop()
    return {
        "analyses": names,
        "batch": batch,
        "shards": shards,
        "workload": trace.name,
        "offline_eps": n / offline_seconds if offline_seconds > 0 else math.inf,
        "offline_seconds": offline_seconds,
        "rings": rows,
        "agree": all(row["agree"] for row in rows),
    }


def _row_agrees(row: Dict) -> bool:
    """Every agreement flag of one workload row, folded together."""
    ok = row["agree"]
    if "ingest" in row:
        ok = ok and row["ingest"]["agree"]
    if "parallel" in row:
        ok = ok and row["parallel"]["agree"]
    return ok


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _summary(rows: List[Dict]) -> Dict:
    if not rows:
        return {}
    speedups = [row["speedup_vs_seed"] for row in rows]
    total_seed = sum(row["seed_seconds"] for row in rows)
    total_packed = sum(row["packed_seconds"] for row in rows)
    return {
        "rows": len(rows),
        "aggregate_speedup_vs_seed": total_seed / total_packed,
        "geomean_speedup_vs_seed": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        ),
        "min_speedup_vs_seed": min(speedups),
        "max_speedup_vs_seed": max(speedups),
        "rows_at_3x": sum(1 for s in speedups if s >= 3.0),
        "all_agree": all(row["agree"] for row in rows),
    }


def run_bench(
    scale: float = 1.0,
    seed: int = 7,
    repeats: int = 3,
    algorithm: str = "aerodrome",
    tables: Iterable[int] = (1, 2),
    scaling_sizes: Iterable[int] = SCALING_SIZES,
    session: bool = True,
    ingest: bool = True,
    jobs: int = 2,
    service: bool = True,
    cluster: bool = True,
    verbose: bool = True,
) -> Dict:
    """Run the full benchmark matrix and return the report dict.

    ``ingest=False`` skips the cold-start split; ``jobs`` < 2 skips the
    serial-vs-parallel session comparison; ``service=False`` skips the
    streamed-vs-offline service block; ``cluster=False`` skips the
    1-node vs 3-node ring comparison.
    """
    report: Dict = {
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "algorithm": algorithm,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "workloads": [],
        "scaling": [],
    }
    tables = set(tables)
    cases = [c for c in TABLE1 if 1 in tables] + [c for c in TABLE2 if 2 in tables]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        workdir = Path(tmp)
        for case in cases:
            trace = case.generate(seed=seed, scale=scale)
            pack_start = time.perf_counter()
            packed = pack(trace)
            pack_seconds = time.perf_counter() - pack_start
            row = bench_case(
                case.name, trace, packed, algorithm=algorithm, repeats=repeats
            )
            row["table"] = case.table
            row["pack_seconds"] = pack_seconds
            if ingest:
                row["ingest"] = bench_ingest(
                    trace, packed, workdir,
                    algorithm=algorithm, repeats=repeats,
                )
                # The satellite columns, hoisted for easy table reading:
                # full ingest split next to the historical pack_seconds.
                row["parse_seconds"] = row["ingest"]["parse_seconds"]
                row["load_seconds"] = row["ingest"]["load_seconds"]
                row["pack_seconds"] = row["ingest"]["pack_seconds"]
            if session:
                row["session"] = bench_session(
                    packed, algorithm=algorithm, repeats=repeats
                )
            if jobs >= 2:
                row["parallel"] = bench_parallel(
                    packed, algorithm=algorithm, repeats=repeats, jobs=jobs
                )
            report["workloads"].append(row)
            if verbose:
                flag = "" if _row_agrees(row) else "  !! DISAGREE"
                onepass = (
                    f"  1pass {row['session']['onepass_speedup']:4.2f}x"
                    if session
                    else ""
                )
                cold = (
                    f"  cold {row['ingest']['cold_start_speedup']:6.0f}x"
                    if ingest
                    else ""
                )
                par = (
                    f"  jobs{jobs} {row['parallel']['parallel_speedup']:4.2f}x"
                    if jobs >= 2
                    else ""
                )
                print(
                    f"table{case.table} {case.name:14s} {row['events']:7d} ev  "
                    f"seed {row['seed_eps']:9.0f} ev/s  "
                    f"packed {row['packed_eps']:9.0f} ev/s  "
                    f"{row['speedup_vs_seed']:5.2f}x{onepass}{cold}{par}{flag}",
                    file=sys.stderr,
                )
    # Scaling sweep: the linear-time story at growing trace lengths.
    scaling_case = CASES_BY_NAME["raytracer"]
    for size in scaling_sizes:
        trace = scaling_case.generate(seed=seed, scale=size / scaling_case.events)
        packed = pack(trace)
        row = bench_case(
            f"raytracer@{size}", trace, packed, algorithm=algorithm, repeats=repeats
        )
        report["scaling"].append(
            {
                "events": row["events"],
                "seed_eps": row["seed_eps"],
                "packed_eps": row["packed_eps"],
                "speedup_vs_seed": row["speedup_vs_seed"],
                "agree": row["agree"],
            }
        )
        if verbose:
            print(
                f"scaling {row['events']:7d} ev  "
                f"packed {row['packed_eps']:9.0f} ev/s  "
                f"{row['speedup_vs_seed']:5.2f}x",
                file=sys.stderr,
            )
    if service:
        # Streamed-vs-offline over a live loopback server, on the
        # scaling workload's shape at the current scale.
        service_case = CASES_BY_NAME["raytracer"]
        service_trace = service_case.generate(seed=seed, scale=scale)
        report["service"] = bench_service(service_trace)
        if verbose:
            for row in report["service"]["sessions"]:
                flag = "" if row["agree"] else "  !! DISAGREE"
                print(
                    f"service {row['sessions']}x{row['events'] // row['sessions']:6d} ev  "
                    f"streamed {row['events_per_second']:9.0f} ev/s  "
                    f"offline {report['service']['offline_eps']:9.0f} ev/s"
                    f"{flag}",
                    file=sys.stderr,
                )
    if cluster:
        # The ring-routed repeat of the service comparison: the same
        # workload streamed through 1-node and 3-node loopback rings.
        cluster_case = CASES_BY_NAME["raytracer"]
        cluster_trace = cluster_case.generate(seed=seed, scale=scale)
        report["cluster"] = bench_cluster(cluster_trace)
        if verbose:
            for row in report["cluster"]["rings"]:
                flag = "" if row["agree"] else "  !! DISAGREE"
                print(
                    f"cluster {row['nodes']}-node "
                    f"{row['sessions']}x{row['events'] // row['sessions']:6d} ev  "
                    f"streamed {row['events_per_second']:9.0f} ev/s  "
                    f"owners {row['owners_hit']}{flag}",
                    file=sys.stderr,
                )
    table1_rows = [r for r in report["workloads"] if r["table"] == 1]
    table2_rows = [r for r in report["workloads"] if r["table"] == 2]
    report["summary"] = {
        "table1": _summary(table1_rows),
        "table2": _summary(table2_rows),
        "all_agree": all(_row_agrees(r) for r in report["workloads"])
        and all(r["agree"] for r in report["scaling"])
        and (report.get("service", {}).get("agree", True))
        and (report.get("cluster", {}).get("agree", True)),
    }
    if service:
        block = report["service"]
        report["summary"]["service"] = {
            "analyses": block["analyses"],
            "offline_eps": block["offline_eps"],
            "streamed_eps": {
                str(row["sessions"]): row["events_per_second"]
                for row in block["sessions"]
            },
            "all_agree": block["agree"],
        }
        if (os.cpu_count() or 1) < 2:
            report["summary"]["service"]["note"] = (
                "single-CPU host: streamed events/sec rides one core "
                "plus wire overhead, so streamed < offline is expected "
                "here; the agree flags (streamed report equality with "
                "the offline session) are the hardware-independent gate"
            )
    if cluster:
        block = report["cluster"]
        report["summary"]["cluster"] = {
            "analyses": block["analyses"],
            "offline_eps": block["offline_eps"],
            "streamed_eps": {
                str(row["nodes"]): row["events_per_second"]
                for row in block["rings"]
            },
            "all_agree": block["agree"],
        }
        if (os.cpu_count() or 1) < 2:
            report["summary"]["cluster"]["note"] = (
                "single-CPU host: every ring node time-slices one core, "
                "so the 3-node column mostly prices the gossip and "
                "routing hops; the agree flags (ring-routed report "
                "equality with the offline session) are the "
                "hardware-independent gate"
            )
    session_speedups = [
        r["session"]["onepass_speedup"]
        for r in report["workloads"]
        if "session" in r
    ]
    if session_speedups:
        report["summary"]["session_onepass_geomean"] = _geomean(session_speedups)
    ingest_rows = [r for r in report["workloads"] if "ingest" in r]
    if ingest_rows:
        cold = [r["ingest"]["cold_start_speedup"] for r in ingest_rows]
        t1_cold = [
            r["ingest"]["cold_start_speedup"]
            for r in ingest_rows
            if r["table"] == 1
        ]
        report["summary"]["ingest"] = {
            "geomean_cold_start_speedup": _geomean(cold),
            "min_cold_start_speedup": min(cold),
            "table1_min_cold_start_speedup": min(t1_cold) if t1_cold else None,
            "geomean_fused_parse_speedup": _geomean(
                [r["ingest"]["fused_speedup"] for r in ingest_rows]
            ),
            "all_agree": all(r["ingest"]["agree"] for r in ingest_rows),
        }
    parallel_rows = [r for r in report["workloads"] if "parallel" in r]
    if parallel_rows:
        speedups = [r["parallel"]["parallel_speedup"] for r in parallel_rows]
        cpus = os.cpu_count() or 1
        report["summary"]["parallel"] = {
            "jobs": parallel_rows[0]["parallel"]["jobs"],
            "cpus": cpus,
            "analyses": parallel_rows[0]["parallel"]["analyses"],
            "geomean_parallel_speedup": _geomean(speedups),
            "min_parallel_speedup": min(speedups),
            "max_parallel_speedup": max(speedups),
            "all_agree": all(r["parallel"]["agree"] for r in parallel_rows),
        }
        if cpus < 2:
            # Wall-clock speedup needs idle cores; say so in the artifact
            # instead of letting a <1x column read as a defect.
            report["summary"]["parallel"]["note"] = (
                "single-CPU host: workers time-slice one core, so "
                "wall-clock speedup <= 1x is expected here; the agree "
                "flags (serial/parallel report equality) are the "
                "hardware-independent gate"
            )
    report["peak_rss_kb"] = _peak_rss_kb()
    return report


def write_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI driver shared by ``repro bench`` and benchmarks/perf_harness.py."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="packed-vs-seed throughput benchmark (BENCH_PR8.json)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--algorithm", default="aerodrome",
        help="registry name of the checker under test",
    )
    parser.add_argument(
        "--tables", default="1,2",
        help="comma-separated tables to run (default: 1,2)",
    )
    parser.add_argument(
        "--no-scaling", action="store_true", help="skip the scaling sweep"
    )
    parser.add_argument(
        "--no-session",
        action="store_true",
        help="skip the one-pass vs N-pass session comparison column",
    )
    parser.add_argument(
        "--no-ingest",
        action="store_true",
        help="skip the cold-start ingest split (parse/pack/load timings)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="workers for the serial-vs-parallel session column "
        "(0 or 1 skips it; default 2)",
    )
    parser.add_argument(
        "--no-service",
        action="store_true",
        help="skip the streamed-vs-offline service block",
    )
    parser.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the 1-node vs 3-node ring comparison",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_PR8.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every path agrees on every workload "
        "(including reloaded traces, parallel sessions and streamed "
        "service sessions)",
    )
    parser.add_argument(
        "--runs-dir", default="runs",
        help="also mirror the artifact into a 'repro diff'-able run-id "
        "directory under this root (default: runs/)",
    )
    parser.add_argument(
        "--no-runs-dir", action="store_true",
        help="write only the flat -o artifact",
    )
    args = parser.parse_args(argv)
    try:
        tables = tuple(int(t) for t in args.tables.split(",") if t)
    except ValueError:
        parser.error(f"--tables expects comma-separated table numbers, got {args.tables!r}")
    if not set(tables) <= {1, 2}:
        parser.error(f"--tables knows tables 1 and 2, got {args.tables!r}")
    report = run_bench(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        algorithm=args.algorithm,
        tables=tables,
        scaling_sizes=() if args.no_scaling else SCALING_SIZES,
        session=not args.no_session,
        ingest=not args.no_ingest,
        jobs=args.jobs,
        service=not args.no_service,
        cluster=not args.no_cluster,
    )
    write_report(report, args.output)
    if not args.no_runs_dir and args.runs_dir:
        # The flat artifact stays for backward compatibility; the
        # run-id directory is the 'repro diff'-able golden path.
        from ..obs.experiment import store_bench_run

        stored = store_bench_run(report, args.runs_dir)
        print(f"run {stored['run_id']} -> {stored['run_dir']}")
    summary = report["summary"]
    table1 = summary.get("table1") or {}
    if table1:
        print(
            f"table1: {table1['aggregate_speedup_vs_seed']:.2f}x aggregate, "
            f"{table1['geomean_speedup_vs_seed']:.2f}x geomean, "
            f"{table1['rows_at_3x']}/{table1['rows']} rows at 3x"
        )
    ingest = summary.get("ingest") or {}
    if ingest:
        from .reporting import format_ingest_split

        print(format_ingest_split(report["workloads"], title="Cold-start split"))
        print(
            f"ingest: load_packed cold start {ingest['geomean_cold_start_speedup']:.0f}x "
            f"geomean (min {ingest['min_cold_start_speedup']:.0f}x) vs parse+pack; "
            f"fused parse {ingest['geomean_fused_parse_speedup']:.2f}x"
        )
    parallel = summary.get("parallel") or {}
    if parallel:
        from .reporting import format_parallel

        print(format_parallel(report["workloads"], title="Parallel sessions"))
        print(
            f"parallel: jobs={parallel['jobs']} on {parallel['cpus']} cpu(s), "
            f"{parallel['geomean_parallel_speedup']:.2f}x geomean session speedup, "
            f"agree={parallel['all_agree']}"
        )
    service_summary = summary.get("service") or {}
    if service_summary:
        from .reporting import format_service

        print(format_service(report["service"], title="Streaming service"))
        streamed = ", ".join(
            f"{k} session(s) {eps:.0f} ev/s"
            for k, eps in service_summary["streamed_eps"].items()
        )
        print(
            f"service: offline {service_summary['offline_eps']:.0f} ev/s; "
            f"streamed {streamed}; agree={service_summary['all_agree']}"
        )
    cluster_summary = summary.get("cluster") or {}
    if cluster_summary:
        ring_eps = ", ".join(
            f"{k}-node {eps:.0f} ev/s"
            for k, eps in cluster_summary["streamed_eps"].items()
        )
        print(
            f"cluster: offline {cluster_summary['offline_eps']:.0f} ev/s; "
            f"{ring_eps}; agree={cluster_summary['all_agree']}"
        )
    print(f"wrote {args.output} (all_agree={summary['all_agree']})")
    if args.check and not summary["all_agree"]:
        print(
            "FAIL: a path disagrees (packed/string, reloaded, or parallel)",
            file=sys.stderr,
        )
        return 1
    return 0
