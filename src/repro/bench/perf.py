"""Throughput benchmark: packed+epoch fast path vs. the seed string path.

This is the harness behind ``repro bench`` and
``benchmarks/perf_harness.py``. For every workload it generates the
trace once, compiles it once with :func:`repro.trace.packed.pack`, and
then times three checkers on identical input:

* ``seed`` — :class:`repro.bench.seed_baseline.SeedOptimizedAeroDromeChecker`,
  the frozen pre-packed-trace implementation (list-backed clocks,
  per-event string interning). This is the "before" build every speedup
  is quoted against.
* ``string`` — the current :func:`~repro.core.checker.make_checker`
  checker fed string events through its adapter ``process`` API.
* ``packed`` — the same checker consuming the packed trace through
  ``run_packed``.

Each measurement is best-of-``repeats`` wall time on a fresh checker;
tiny traces are looped until a run lasts long enough to time (the loop
count divides out). Verdicts and violating event indices are
cross-checked across all three paths — a disagreement marks the run
``agree: false`` and fails ``--check`` mode, which is what CI's
benchmark smoke gates on.

The output (``BENCH_PR1.json`` by default) schema is documented in
``docs/PERF.md``.
"""

from __future__ import annotations

import json
import math
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..api.registry import create_analysis, make_checker
from ..api.session import Session
from ..sim.workloads.benchmarks import TABLE1, TABLE2, CASES_BY_NAME
from ..trace.packed import PackedTrace, pack
from ..trace.trace import Trace
from .seed_baseline import SeedOptimizedAeroDromeChecker

#: Analyses co-run in the one-pass vs N-pass session comparison: the
#: checker under test plus the two streaming extension analyses.
SESSION_EXTRAS = ("races", "lockset")

#: Schema tag stamped into every report.
SCHEMA = "repro-bench/1"

#: A timed run should last at least this long; shorter traces are
#: looped (fresh checker per iteration, loop count divided out).
_MIN_SECONDS = 0.02

#: Default scaling sweep sizes (events), run on the raytracer shape.
SCALING_SIZES = (4_000, 16_000, 64_000)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed_eps(make_run, events: int, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` timing with automatic looping for tiny traces.

    ``make_run`` returns a zero-argument callable (a fresh checker bound
    to its input); construction happens outside the timed region. Traces
    too short to time reliably are run in batches of ``iters`` fresh
    checkers per measurement, and the batch size divides out.
    """
    import gc

    gc_was_enabled = gc.isenabled()
    gc.disable()  # collector pauses are the dominant timing noise here
    try:
        run = make_run()
        start = time.perf_counter()
        run()
        best = time.perf_counter() - start
        iters = 1
        while best * iters < _MIN_SECONDS and iters < 1024:
            iters *= 2
        remaining = repeats - 1 if iters == 1 else repeats
        if iters > 1:
            best = math.inf
        for _ in range(remaining):
            runs = [make_run() for _ in range(iters)]
            gc.collect()
            start = time.perf_counter()
            for batched in runs:
                batched()
            elapsed = (time.perf_counter() - start) / iters
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"seconds": best, "eps": events / best if best > 0 else math.inf}


def _violation_idx(result) -> Optional[int]:
    return result.violation.event_idx if result.violation is not None else None


def bench_case(
    name: str,
    trace: Trace,
    packed: PackedTrace,
    algorithm: str = "aerodrome",
    repeats: int = 3,
) -> Dict:
    """Time the three paths on one pre-generated trace."""
    events = list(trace.events)

    seed_result = SeedOptimizedAeroDromeChecker().run(events)
    string_result = make_checker(algorithm).run(iter(events))
    packed_result = make_checker(algorithm).run_packed(packed)

    agree = (
        seed_result.serializable
        == string_result.serializable
        == packed_result.serializable
    ) and (
        _violation_idx(seed_result)
        == _violation_idx(string_result)
        == _violation_idx(packed_result)
    )
    n = seed_result.events_processed

    seed = _timed_eps(
        lambda: (lambda c=SeedOptimizedAeroDromeChecker(): c.run(events)),
        n, repeats,
    )
    string = _timed_eps(
        lambda: (lambda c=make_checker(algorithm): c.run(iter(events))),
        n, repeats,
    )
    fast = _timed_eps(
        lambda: (lambda c=make_checker(algorithm): c.run_packed(packed)),
        n, repeats,
    )

    return {
        "name": name,
        "events": len(events),
        "events_processed": n,
        "threads": len(packed.thread_names),
        "variables": len(packed.variable_names),
        "locks": len(packed.lock_names),
        "packed_bytes": packed.nbytes(),
        "serializable": packed_result.serializable,
        "violation_idx": _violation_idx(packed_result),
        "agree": agree,
        "seed_seconds": seed["seconds"],
        "string_seconds": string["seconds"],
        "packed_seconds": fast["seconds"],
        "seed_eps": seed["eps"],
        "string_eps": string["eps"],
        "packed_eps": fast["eps"],
        "speedup_vs_seed": seed["seconds"] / fast["seconds"],
        "speedup_vs_string": string["seconds"] / fast["seconds"],
    }


def bench_session(
    packed: PackedTrace,
    algorithm: str = "aerodrome",
    repeats: int = 3,
) -> Dict:
    """One-pass vs N-pass: co-run K analyses on one sweep, or K sweeps.

    Both sides consume the same :class:`PackedTrace`. The N-pass side
    runs one single-analysis session per analysis (so the checker gets
    its own inlined hot loop); the one-pass side co-runs them all on a
    single shared sweep — the ``repro.api`` session's whole point.
    """
    names = (algorithm,) + SESSION_EXTRAS
    events = len(packed)

    def make_onepass():
        session = Session(packed, [create_analysis(n) for n in names])
        return session.run

    def make_npass():
        sessions = [Session(packed, [create_analysis(n)]) for n in names]

        def run_all():
            for session in sessions:
                session.run()

        return run_all

    onepass = _timed_eps(make_onepass, events, repeats)
    npass = _timed_eps(make_npass, events, repeats)
    return {
        "analyses": list(names),
        "onepass_seconds": onepass["seconds"],
        "npass_seconds": npass["seconds"],
        "onepass_speedup": npass["seconds"] / onepass["seconds"]
        if onepass["seconds"] > 0
        else math.inf,
    }


def _summary(rows: List[Dict]) -> Dict:
    if not rows:
        return {}
    speedups = [row["speedup_vs_seed"] for row in rows]
    total_seed = sum(row["seed_seconds"] for row in rows)
    total_packed = sum(row["packed_seconds"] for row in rows)
    return {
        "rows": len(rows),
        "aggregate_speedup_vs_seed": total_seed / total_packed,
        "geomean_speedup_vs_seed": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        ),
        "min_speedup_vs_seed": min(speedups),
        "max_speedup_vs_seed": max(speedups),
        "rows_at_3x": sum(1 for s in speedups if s >= 3.0),
        "all_agree": all(row["agree"] for row in rows),
    }


def run_bench(
    scale: float = 1.0,
    seed: int = 7,
    repeats: int = 3,
    algorithm: str = "aerodrome",
    tables: Iterable[int] = (1, 2),
    scaling_sizes: Iterable[int] = SCALING_SIZES,
    session: bool = True,
    verbose: bool = True,
) -> Dict:
    """Run the full benchmark matrix and return the report dict."""
    report: Dict = {
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "algorithm": algorithm,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": [],
        "scaling": [],
    }
    tables = set(tables)
    cases = [c for c in TABLE1 if 1 in tables] + [c for c in TABLE2 if 2 in tables]
    for case in cases:
        trace = case.generate(seed=seed, scale=scale)
        pack_start = time.perf_counter()
        packed = pack(trace)
        pack_seconds = time.perf_counter() - pack_start
        row = bench_case(
            case.name, trace, packed, algorithm=algorithm, repeats=repeats
        )
        row["table"] = case.table
        row["pack_seconds"] = pack_seconds
        if session:
            row["session"] = bench_session(
                packed, algorithm=algorithm, repeats=repeats
            )
        report["workloads"].append(row)
        if verbose:
            flag = "" if row["agree"] else "  !! DISAGREE"
            onepass = (
                f"  1pass {row['session']['onepass_speedup']:4.2f}x"
                if session
                else ""
            )
            print(
                f"table{case.table} {case.name:14s} {row['events']:7d} ev  "
                f"seed {row['seed_eps']:9.0f} ev/s  "
                f"packed {row['packed_eps']:9.0f} ev/s  "
                f"{row['speedup_vs_seed']:5.2f}x{onepass}{flag}",
                file=sys.stderr,
            )
    # Scaling sweep: the linear-time story at growing trace lengths.
    scaling_case = CASES_BY_NAME["raytracer"]
    for size in scaling_sizes:
        trace = scaling_case.generate(seed=seed, scale=size / scaling_case.events)
        packed = pack(trace)
        row = bench_case(
            f"raytracer@{size}", trace, packed, algorithm=algorithm, repeats=repeats
        )
        report["scaling"].append(
            {
                "events": row["events"],
                "seed_eps": row["seed_eps"],
                "packed_eps": row["packed_eps"],
                "speedup_vs_seed": row["speedup_vs_seed"],
                "agree": row["agree"],
            }
        )
        if verbose:
            print(
                f"scaling {row['events']:7d} ev  "
                f"packed {row['packed_eps']:9.0f} ev/s  "
                f"{row['speedup_vs_seed']:5.2f}x",
                file=sys.stderr,
            )
    table1_rows = [r for r in report["workloads"] if r["table"] == 1]
    table2_rows = [r for r in report["workloads"] if r["table"] == 2]
    report["summary"] = {
        "table1": _summary(table1_rows),
        "table2": _summary(table2_rows),
        "all_agree": all(r["agree"] for r in report["workloads"])
        and all(r["agree"] for r in report["scaling"]),
    }
    session_speedups = [
        r["session"]["onepass_speedup"]
        for r in report["workloads"]
        if "session" in r
    ]
    if session_speedups:
        report["summary"]["session_onepass_geomean"] = math.exp(
            sum(math.log(s) for s in session_speedups) / len(session_speedups)
        )
    report["peak_rss_kb"] = _peak_rss_kb()
    return report


def write_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI driver shared by ``repro bench`` and benchmarks/perf_harness.py."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="packed-vs-seed throughput benchmark (BENCH_PR1.json)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--algorithm", default="aerodrome",
        help="registry name of the checker under test",
    )
    parser.add_argument(
        "--tables", default="1,2",
        help="comma-separated tables to run (default: 1,2)",
    )
    parser.add_argument(
        "--no-scaling", action="store_true", help="skip the scaling sweep"
    )
    parser.add_argument(
        "--no-session",
        action="store_true",
        help="skip the one-pass vs N-pass session comparison column",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_PR1.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every path agrees on every workload",
    )
    args = parser.parse_args(argv)
    try:
        tables = tuple(int(t) for t in args.tables.split(",") if t)
    except ValueError:
        parser.error(f"--tables expects comma-separated table numbers, got {args.tables!r}")
    if not set(tables) <= {1, 2}:
        parser.error(f"--tables knows tables 1 and 2, got {args.tables!r}")
    report = run_bench(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        algorithm=args.algorithm,
        tables=tables,
        scaling_sizes=() if args.no_scaling else SCALING_SIZES,
        session=not args.no_session,
    )
    write_report(report, args.output)
    summary = report["summary"]
    table1 = summary.get("table1") or {}
    if table1:
        print(
            f"table1: {table1['aggregate_speedup_vs_seed']:.2f}x aggregate, "
            f"{table1['geomean_speedup_vs_seed']:.2f}x geomean, "
            f"{table1['rows_at_3x']}/{table1['rows']} rows at 3x"
        )
    print(f"wrote {args.output} (all_agree={summary['all_agree']})")
    if args.check and not summary["all_agree"]:
        print("FAIL: packed path disagrees with the string path", file=sys.stderr)
        return 1
    return 0
