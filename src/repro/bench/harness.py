"""Benchmark harness: time checkers on workload traces, build table rows.

Mirrors the paper's experimental workflow (Appendix D): generate a trace
once, then run every candidate algorithm *on the same trace*, timing each
and recording the verdict. A per-run timeout reproduces the paper's "TO"
entries — when Velodrome exceeds it, the speed-up is reported as a lower
bound (``> x``), exactly as in Table 1.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..api.registry import make_checker
from ..core.violations import CheckResult, Violation
from ..sim.workloads.benchmarks import BenchmarkCase
from ..trace.metainfo import MetaInfo, metainfo
from ..trace.trace import Trace

#: How many events to process between timeout checks.
_TIMEOUT_STRIDE = 2048


@dataclass(frozen=True)
class TimedRun:
    """One algorithm's timed run over one trace.

    Attributes:
        algorithm: Checker name.
        seconds: Wall-clock analysis time (excludes trace generation).
        result: The verdict (meaningless when ``timed_out``).
        timed_out: True when the run was aborted at the timeout.
        peak_graph_size: For graph-based checkers, the largest live
            transaction graph observed (paper §5.3 discusses these
            node counts); ``None`` otherwise.
    """

    algorithm: str
    seconds: float
    result: CheckResult
    timed_out: bool
    peak_graph_size: Optional[int] = None

    @property
    def display_time(self) -> str:
        return "TO" if self.timed_out else f"{self.seconds:.3f}"

    @property
    def violation(self) -> Optional[Violation]:
        return self.result.violation


def run_timed(
    algorithm: str, trace: Trace, timeout: Optional[float] = None
) -> TimedRun:
    """Run one checker over ``trace`` with an optional wall-clock timeout."""
    checker = make_checker(algorithm)
    events = trace.events
    n = len(events)
    start = time.perf_counter()
    timed_out = False
    i = 0
    while i < n:
        chunk_end = min(i + _TIMEOUT_STRIDE, n)
        found = None
        while i < chunk_end:
            found = checker.process(events[i])
            i += 1
            if found is not None:
                break
        if found is not None:
            break
        if timeout is not None and time.perf_counter() - start > timeout:
            timed_out = True
            break
    elapsed = time.perf_counter() - start
    peak = getattr(checker, "peak_graph_size", None)
    return TimedRun(
        algorithm=algorithm,
        seconds=elapsed,
        result=checker.result(),
        timed_out=timed_out,
        peak_graph_size=peak,
    )


@dataclass
class RowResult:
    """Measured data for one benchmark row (columns 1–10 of the tables)."""

    case: BenchmarkCase
    info: MetaInfo
    runs: Dict[str, TimedRun] = field(default_factory=dict)

    @property
    def aerodrome(self) -> TimedRun:
        return self.runs["aerodrome"]

    @property
    def velodrome(self) -> TimedRun:
        return self.runs["velodrome"]

    @property
    def serializable(self) -> Optional[bool]:
        """The agreed verdict (``None`` if every run timed out)."""
        for run in self.runs.values():
            if not run.timed_out:
                return run.result.serializable
        return None

    @property
    def verdicts_agree(self) -> bool:
        verdicts = {
            run.result.serializable
            for run in self.runs.values()
            if not run.timed_out
        }
        return len(verdicts) <= 1

    @property
    def speedup(self) -> float:
        """Velodrome time / AeroDrome time (a lower bound under timeout)."""
        aero = self.aerodrome.seconds
        return self.velodrome.seconds / aero if aero > 0 else float("inf")

    @property
    def speedup_display(self) -> str:
        value = self.speedup
        text = f"{value:.2f}" if value < 100 else f"{value:.0f}"
        return f"> {text}" if self.velodrome.timed_out else text


def run_case(
    case: BenchmarkCase,
    algorithms: Iterable[str] = ("aerodrome", "velodrome"),
    seed: int = 7,
    scale: float = 1.0,
    timeout: Optional[float] = None,
) -> RowResult:
    """Generate one row's trace and time every algorithm on it."""
    trace = case.generate(seed=seed, scale=scale)
    row = RowResult(case=case, info=metainfo(trace))
    for algorithm in algorithms:
        row.runs[algorithm] = run_timed(algorithm, trace, timeout=timeout)
    return row


def run_table(
    cases: Iterable[BenchmarkCase],
    algorithms: Iterable[str] = ("aerodrome", "velodrome"),
    seed: int = 7,
    scale: float = 1.0,
    timeout: Optional[float] = None,
    jobs: int = 1,
) -> List[RowResult]:
    """Run every row of a table (E1/E2 in DESIGN.md).

    With ``jobs`` > 1 (or ``0`` = one worker per CPU, the same
    convention as ``Session.run``) the rows are fanned across worker
    processes by :class:`repro.api.parallel.ParallelExecutor` — each
    worker generates and times whole benchmark rows independently (the
    rows share no state), and the results come back in table order.
    Timings stay honest only when the machine has idle cores to run
    the workers on.
    """
    cases = list(cases)
    worker = functools.partial(
        run_case, algorithms=tuple(algorithms), seed=seed, scale=scale,
        timeout=timeout,
    )
    if jobs == 0:
        from ..api.parallel import default_jobs

        jobs = default_jobs()
    if jobs > 1 and len(cases) > 1:
        from ..api.parallel import ParallelExecutor

        return ParallelExecutor(jobs=jobs).map(worker, cases)
    return [worker(case) for case in cases]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the scaling experiment (E3)."""

    events: int
    aerodrome_seconds: float
    velodrome_seconds: float

    @property
    def speedup(self) -> float:
        if self.aerodrome_seconds <= 0:
            return float("inf")
        return self.velodrome_seconds / self.aerodrome_seconds


def run_scaling(
    case: BenchmarkCase,
    sizes: Iterable[int],
    seed: int = 7,
    timeout: Optional[float] = None,
) -> List[ScalingPoint]:
    """Sweep trace length, timing both algorithms at each size.

    Demonstrates the central claim: AeroDrome's time grows linearly in
    the number of events while Velodrome's grows superlinearly.
    """
    points = []
    for size in sizes:
        scale = size / case.events
        row = run_case(case, seed=seed, scale=scale, timeout=timeout)
        points.append(
            ScalingPoint(
                events=row.info.events,
                aerodrome_seconds=row.aerodrome.seconds,
                velodrome_seconds=row.velodrome.seconds,
            )
        )
    return points
