"""ASCII rendering of benchmark results in the paper's table layout."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .harness import RowResult, ScalingPoint

#: Column headers matching the paper's Tables 1 and 2 (columns 1-10).
TABLE_HEADERS = [
    "Program",
    "Events",
    "Threads",
    "Locks",
    "Variables",
    "Transactions",
    "Atomic?",
    "Velodrome (s)",
    "AeroDrome (s)",
    "Speed-up",
]


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _render(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [_format_row(headers, widths)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def atomic_mark(serializable) -> str:
    if serializable is None:
        return "?"
    return "Y" if serializable else "N"


def format_table(results: Iterable[RowResult], title: str = "") -> str:
    """Render measured results in the paper's column layout."""
    rows = []
    for row in results:
        info = row.info
        rows.append(
            [
                row.case.name,
                f"{info.events}",
                f"{info.threads}",
                f"{info.locks}",
                f"{info.variables}",
                f"{info.transactions}",
                atomic_mark(row.serializable),
                row.velodrome.display_time,
                row.aerodrome.display_time,
                row.speedup_display,
            ]
        )
    table = _render(TABLE_HEADERS, rows)
    return f"{title}\n{table}" if title else table


def format_comparison(results: Iterable[RowResult], title: str = "") -> str:
    """Paper-vs-measured comparison: verdicts and speed-up classes."""
    headers = [
        "Program",
        "Paper atomic?",
        "Ours atomic?",
        "Paper speed-up",
        "Ours speed-up",
        "Expected",
        "Match",
    ]
    rows = []
    for row in results:
        paper = row.case.paper
        measured = row.speedup
        if row.case.expect == "aerodrome":
            match = row.velodrome.timed_out or measured > 3.0
        else:
            match = (not row.velodrome.timed_out) and 0.05 <= measured <= 20.0
        verdict_match = (
            row.serializable is None or row.serializable == paper.atomic
        )
        rows.append(
            [
                row.case.name,
                "Y" if paper.atomic else "N",
                atomic_mark(row.serializable),
                paper.speedup,
                row.speedup_display,
                row.case.expect,
                "yes" if (match and verdict_match) else "NO",
            ]
        )
    table = _render(headers, rows)
    return f"{title}\n{table}" if title else table


def format_ingest_split(rows: Iterable[dict], title: str = "") -> str:
    """Render the cold-start ingest split of a bench report's workloads.

    ``rows`` are workload dicts from the ``repro-bench/2`` report that
    carry an ``ingest`` block (see :func:`repro.bench.perf.bench_ingest`).
    """
    headers = [
        "Program",
        "Events",
        "Parse (s)",
        "Pack (s)",
        "Fused (s)",
        "Load (s)",
        "Cold-start",
    ]
    table_rows = []
    for row in rows:
        ingest = row.get("ingest")
        if not ingest:
            continue
        table_rows.append(
            [
                row["name"],
                f"{row['events']}",
                f"{ingest['parse_seconds']:.4f}",
                f"{ingest['pack_seconds']:.4f}",
                f"{ingest['parse_packed_seconds']:.4f}",
                f"{ingest['load_seconds']:.6f}",
                f"{ingest['cold_start_speedup']:.0f}x",
            ]
        )
    table = _render(headers, table_rows)
    return f"{title}\n{table}" if title else table


def format_parallel(rows: Iterable[dict], title: str = "") -> str:
    """Render the serial-vs-parallel session column of a bench report."""
    headers = [
        "Program",
        "Events",
        "Analyses",
        "Serial (s)",
        "Parallel (s)",
        "Speed-up",
        "Agree",
    ]
    table_rows = []
    for row in rows:
        parallel = row.get("parallel")
        if not parallel:
            continue
        table_rows.append(
            [
                row["name"],
                f"{row['events']}",
                f"{len(parallel['analyses'])}x jobs={parallel['jobs']}",
                f"{parallel['serial_seconds']:.3f}",
                f"{parallel['parallel_seconds']:.3f}",
                f"{parallel['parallel_speedup']:.2f}",
                "yes" if parallel["agree"] else "NO",
            ]
        )
    table = _render(headers, table_rows)
    return f"{title}\n{table}" if title else table


def format_service(block: dict, title: str = "") -> str:
    """Render the streamed-vs-offline service block of a bench report.

    ``block`` is the top-level ``service`` dict of a ``repro-bench/4``
    report (see :func:`repro.bench.perf.bench_service`).
    """
    headers = [
        "Backend",
        "Sessions",
        "Events",
        "Streamed (s)",
        "Streamed ev/s",
        "Offline ev/s",
        "Agree",
    ]
    table_rows = [
        [
            row.get("backend", "thread"),
            f"{row['sessions']}",
            f"{row['events']}",
            f"{row['seconds']:.3f}",
            f"{row['events_per_second']:.0f}",
            f"{block['offline_eps']:.0f}",
            "yes" if row["agree"] else "NO",
        ]
        for row in block["sessions"]
    ]
    table = _render(headers, table_rows)
    return f"{title}\n{table}" if title else table


def format_scaling(points: Iterable[ScalingPoint], title: str = "") -> str:
    """Render the E3 scaling sweep."""
    headers = ["Events", "AeroDrome (s)", "Velodrome (s)", "Speed-up"]
    rows = [
        [
            f"{p.events}",
            f"{p.aerodrome_seconds:.3f}",
            f"{p.velodrome_seconds:.3f}",
            f"{p.speedup:.2f}",
        ]
        for p in points
    ]
    table = _render(headers, rows)
    return f"{title}\n{table}" if title else table
