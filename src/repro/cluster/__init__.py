"""repro.cluster — a consistent-hash ring of serve nodes.

The multi-node layer over :mod:`repro.service`: session ids hash onto
a ring of nodes (:mod:`~repro.cluster.ring`), nodes gossip an
epoch-versioned membership (:mod:`~repro.cluster.membership`), each
node's :class:`~repro.cluster.coordinator.ClusterCoordinator`
rebalances, replicates and fails over sessions by shipping their
checkpoint spool entries (:mod:`~repro.cluster.migration`), and the
:class:`~repro.cluster.client.ClusterClient` routes each session to
its owner, following REDIRECTs and surviving node loss.
"""

from .client import ClusterClient, ClusterError, parse_address
from .coordinator import (
    DEFAULT_GOSSIP_INTERVAL,
    SUSPECT_INTERVALS,
    SUSPICION_THRESHOLD,
    ClusterCoordinator,
)
from .membership import (
    ALIVE,
    DEAD,
    Membership,
    MembershipError,
    NodeInfo,
    parse_membership,
)
from .migration import (
    HandoffError,
    StaleEpochError,
    json_call,
    migrate_session,
    node_call,
    replicate_session,
    ship_handoff,
)
from .ring import DEFAULT_VNODES, HashRing, RingError

__all__ = [
    "ALIVE",
    "DEAD",
    "DEFAULT_GOSSIP_INTERVAL",
    "DEFAULT_VNODES",
    "SUSPECT_INTERVALS",
    "SUSPICION_THRESHOLD",
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterError",
    "HandoffError",
    "HashRing",
    "Membership",
    "MembershipError",
    "NodeInfo",
    "RingError",
    "StaleEpochError",
    "json_call",
    "migrate_session",
    "node_call",
    "parse_address",
    "parse_membership",
    "replicate_session",
    "ship_handoff",
]
