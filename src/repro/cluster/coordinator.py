"""The per-node cluster brain: gossip, failure detection, rebalancing.

One :class:`ClusterCoordinator` rides inside each clustered
``repro serve`` process. It owns the node's membership view and ring,
and runs one background thread that, every ``gossip_interval`` seconds:

1. **gossips** — pushes its membership document to every live peer in
   a ``RING`` frame and merges the reply (push-pull, full mesh; the
   epoch rule in :mod:`repro.cluster.membership` makes merges
   commutative and convergent);
2. **suspects** — every peer gets a *suspicion score* built from its
   silence and its RTT EWMA (see :meth:`ClusterCoordinator.suspicion`);
   a score past ``SUSPICION_THRESHOLD`` marks the peer dead, which
   bumps the epoch and shrinks the ring. A gray-failing peer — alive
   but pathologically slow — accumulates RTT penalty and is handed off
   *before* a pure silence deadline would notice it;
3. **rebalances** — sessions whose ring owner is another node are
   live-migrated there (checkpoint + HANDOFF + drop);
4. **replicates** — sessions owned here whose position advanced since
   the last pass ship a checkpoint *copy* to their ring successor's
   replica spool;
5. **adopts** — replica checkpoints whose ring owner is now *this*
   node (their original owner died) are imported and resume serving.

Every HANDOFF and OWNED notice leaving this node is stamped with the
membership ``epoch`` it was decided under; a receiver with a newer
epoch answers ``FENCED`` and the state stays put until gossip catches
this node up (see :mod:`repro.cluster.migration`).

All peer traffic happens on the coordinator's own thread — inbound
frames (JOIN/RING/HANDOFF/OWNED) are handled by the ordinary
connection state machine, which calls the thread-safe ``handle_*``
methods here. The server backends never block on a peer.

Failure model: a ``kill -9`` of a node loses its live sessions and
un-replicated tail, but every session checkpoint already shipped to a
successor is adopted within one suspicion window, and the client's
lenient resume + positioned-frame resync re-sends whatever the replica
had not seen — recovered reports equal the offline run (the CI
``cluster-smoke`` drill).

Determinism hooks (used by :mod:`repro.faults.netsim`): ``clock`` is
an attribute (default :func:`time.monotonic`) so simulated time can
drive suspicion, and ``manual_ticks=True`` keeps the tick thread off
so a harness can interleave :meth:`tick` calls across nodes in a
seeded order.

Fault sites (see :mod:`repro.faults`): ``cluster.gossip`` — ``drop``
one outbound gossip contact (ages the peer toward suspicion),
``delay`` it one full round, ``duplicate`` it, or ``reorder`` it to
the end of the current round; ``cluster.handoff`` and
``net.partition`` — see :mod:`repro.cluster.migration`.
"""

from __future__ import annotations

import logging
import tempfile
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults.injector import fire
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..service.backoff import Backoff
from ..service.protocol import FrameType
from ..service.recovery import RecoveryError, RecoveryManager
from ..service.router import Router, RouterError
from .membership import ALIVE, Membership, MembershipError, NodeInfo
from .migration import (
    DEFAULT_CALL_TIMEOUT,
    HandoffError,
    StaleEpochError,
    json_call,
    migrate_session,
    replicate_session,
)
from .ring import DEFAULT_VNODES, HashRing

log = logging.getLogger("repro.cluster")

#: Seconds between gossip/rebalance ticks.
DEFAULT_GOSSIP_INTERVAL = 0.5

#: Suspicion multiple: a peer silent for this many gossip intervals is
#: declared dead (the failover trigger).
SUSPECT_INTERVALS = 4

#: A peer whose suspicion score reaches this is declared dead. The
#: score is normalized so that pure silence crosses the threshold
#: exactly at ``suspect_after`` — the RTT penalty only ever moves the
#: verdict *earlier* (gray failure), never later.
SUSPICION_THRESHOLD = 4.0

#: EWMA gain for peer round-trip times (RFC-6298 flavored: one eighth
#: of each new sample, one quarter for the deviation estimate).
RTT_ALPHA = 0.125
RTT_BETA = 0.25

#: Floor for the per-peer RTT budget, so sub-millisecond loopback
#: clusters do not flag ordinary scheduler jitter as gray failure.
MIN_RTT_BUDGET = 0.05


class ClusterCoordinator:
    """One node's membership, ring, and migration engine.

    Args:
        node_id: This node's unique id (stable across the cluster).
        host/port: The address *peers and clients* reach this node at
            (the advertise address, not the bind address).
        router: The node's shard router (sessions live there).
        vnodes: Virtual points per node on the ring.
        gossip_interval: Seconds between background ticks.
        suspect_after: Seconds of peer silence before a death verdict
            (default ``SUSPECT_INTERVALS * gossip_interval``); the RTT
            suspicion score is normalized against this.
        seeds: ``host:port`` addresses to JOIN through at start.
        replica_spool: Directory for checkpoint replicas shipped here
            by peers (defaults to ``<spool>/replicas`` next to the
            router's spool, or a temp directory on spool-less nodes).
        call_timeout: Seconds one peer round trip may take.
        manual_ticks: Skip the background tick thread; the owner calls
            :meth:`tick` itself (the netsim harness does this to step
            all nodes in a deterministic order).
    """

    def __init__(
        self,
        node_id: str,
        host: str,
        port: int,
        router: Router,
        vnodes: int = DEFAULT_VNODES,
        gossip_interval: float = DEFAULT_GOSSIP_INTERVAL,
        suspect_after: Optional[float] = None,
        seeds: Sequence[str] = (),
        replica_spool: Optional[str] = None,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
        manual_ticks: bool = False,
    ) -> None:
        self.node_id = node_id
        self.info = NodeInfo(node_id, host, port, ALIVE)
        self.router = router
        self.vnodes = vnodes
        self.gossip_interval = gossip_interval
        self.suspect_after = (
            suspect_after
            if suspect_after is not None
            else SUSPECT_INTERVALS * gossip_interval
        )
        self.seeds = list(seeds)
        self.call_timeout = call_timeout
        self.manual_ticks = manual_ticks
        #: Time source for silence/suspicion bookkeeping. An attribute
        #: so the netsim harness can substitute simulated time.
        self.clock = time.monotonic
        if replica_spool is None:
            if router.recovery is not None:
                replica_spool = str(router.recovery.spool / "replicas")
            else:
                replica_spool = tempfile.mkdtemp(prefix="repro-replicas-")
        self.replicas = RecoveryManager(Path(replica_spool))

        self._lock = threading.RLock()
        self.membership = Membership()
        self.membership.add(self.info)  # epoch 1: a cluster of one
        self.ring = HashRing([node_id], vnodes)
        self._last_seen: Dict[str, float] = {}
        #: Per-peer smoothed round-trip time and mean deviation.
        self._rtt_ewma: Dict[str, float] = {}
        self._rtt_var: Dict[str, float] = {}
        #: Gossip contacts an injected ``delay`` pushed to next round.
        self._deferred_gossip: List[NodeInfo] = []
        #: Stream position last replicated, per owned session.
        self._replicated: Dict[str, int] = {}
        #: Closed sessions whose replicas still need a drop notice.
        self._closed: List[str] = []
        #: Owned-session rows cached by the last tick (stats source).
        self._owned_cache: List[Dict[str, Any]] = []
        self._replica_cache = 0

        # Typed counters (repro.obs.metrics), mutated under self._lock.
        self.metrics = MetricsRegistry()
        self.migrations_total = self.metrics.counter(
            "repro_cluster_migrations_total", "Sessions migrated away live")
        self.handoffs_in = self.metrics.counter(
            "repro_cluster_handoffs_in_total", "Checkpoint blobs received")
        self.handoffs_out = self.metrics.counter(
            "repro_cluster_handoffs_out_total", "Checkpoint blobs shipped")
        self.handoff_bytes = self.metrics.counter(
            "repro_cluster_handoff_bytes_total",
            "Bytes of checkpoint blobs shipped")
        self.redirects = self.metrics.counter(
            "repro_cluster_redirects_total", "Ownership redirects issued")
        self.gossip_ticks = self.metrics.counter(
            "repro_cluster_gossip_ticks_total", "Coordinator ticks completed")
        #: Outbound calls a fresher peer rejected (StaleEpochError).
        self.fenced_out = self.metrics.counter(
            "repro_cluster_fenced_out_total", "Stale-epoch requests fenced")

        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """JOIN through the seeds (if any), then start the tick thread."""
        if self.seeds:
            self._join_seeds()
        if self.manual_ticks:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"repro-cluster-{self.node_id}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _join_seeds(self) -> None:
        """Announce this node to the cluster through any live seed.

        One reachable seed is enough — its membership document arrives
        in the RING reply and gossip spreads our presence from there.
        """
        backoff = Backoff(initial=0.05, seed=0)
        last_error: Optional[Exception] = None
        for _attempt in range(20):
            for seed in self.seeds:
                host, _, port = seed.rpartition(":")
                try:
                    reply = json_call(
                        host, int(port), FrameType.JOIN,
                        {
                            "from": self.node_id,
                            "node": self.info.to_json(),
                            "membership": self.membership_doc(),
                        },
                        timeout=self.call_timeout,
                    )
                except (HandoffError, ValueError) as exc:
                    last_error = exc
                    continue
                with self._lock:
                    doc = reply.get("membership")
                    if isinstance(doc, dict):
                        self._merge_locked(doc)
                return
            time.sleep(backoff.next())
        raise RuntimeError(
            f"node {self.node_id!r} could not join through any seed "
            f"({', '.join(self.seeds)}): {last_error}"
        )

    def _run(self) -> None:
        while not self._stop.wait(self.gossip_interval):
            try:
                self.tick()
            except Exception:  # the tick must never die
                log.exception("cluster tick failed node=%s", self.node_id)

    # -- view helpers --------------------------------------------------------

    def _rebuild_ring_locked(self) -> None:
        alive = self.membership.alive_ids()
        if self.node_id not in alive:
            alive.append(self.node_id)  # never drop ourselves
        self.ring = HashRing(alive, self.vnodes)

    def _merge_locked(self, doc: Dict[str, Any]) -> bool:
        try:
            changed = self.membership.merge(doc)
        except MembershipError as exc:
            log.warning(
                "ignoring malformed membership from peer node=%s: %s",
                self.node_id, exc,
            )
            return False
        me = self.membership.get(self.node_id)
        if me is None or not me.alive:
            # A slow or partitioned view declared us dead: re-assert.
            # add() bumps the epoch, so our revival wins the next round.
            self.membership.add(self.info)
            changed = True
        if changed:
            self._rebuild_ring_locked()
        return changed

    def membership_doc(self) -> Dict[str, Any]:
        with self._lock:
            return self.membership.to_json()

    @property
    def epoch(self) -> int:
        with self._lock:
            return self.membership.epoch

    def owns(self, session_id: str) -> bool:
        with self._lock:
            return self.ring.owner(session_id) == self.node_id

    def owner_info(self, session_id: str) -> NodeInfo:
        with self._lock:
            owner = self.ring.owner(session_id)
            info = self.membership.get(owner)
        if info is None:  # the ring never outruns membership, but be safe
            return self.info
        return info

    def redirect_doc(self, session_id: str) -> Dict[str, Any]:
        """The REDIRECT payload pointing a client at the owner."""
        info = self.owner_info(session_id)
        with self._lock:
            self.redirects.inc()
            epoch = self.membership.epoch
        return {
            "session": session_id,
            "node": info.node_id,
            "host": info.host,
            "port": info.port,
            "epoch": epoch,
        }

    def local_session_id(self) -> str:
        """A fresh session id this node owns (for un-pinned HELLOs)."""
        for _ in range(4096):
            session_id = uuid.uuid4().hex
            if self.owns(session_id):
                return session_id
        raise RuntimeError("could not draw a locally-owned session id")

    # -- suspicion -----------------------------------------------------------

    def note_rtt(self, peer_id: str, rtt: float) -> None:
        """Fold one peer round-trip sample into its EWMA/deviation.

        Called by the gossip loop after every successful contact; the
        netsim harness also calls it directly to model a gray-failing
        (slow-but-alive) peer under simulated time.
        """
        with self._lock:
            ewma = self._rtt_ewma.get(peer_id)
            if ewma is None:
                self._rtt_ewma[peer_id] = rtt
                self._rtt_var[peer_id] = rtt / 2.0
            else:
                var = self._rtt_var.get(peer_id, 0.0)
                self._rtt_var[peer_id] = (
                    (1.0 - RTT_BETA) * var + RTT_BETA * abs(rtt - ewma)
                )
                self._rtt_ewma[peer_id] = (
                    (1.0 - RTT_ALPHA) * ewma + RTT_ALPHA * rtt
                )

    def _suspicion_locked(self, peer_id: str, now: float) -> float:
        # Silence term: normalized so a completely silent peer crosses
        # SUSPICION_THRESHOLD exactly when suspect_after elapses —
        # identical failover timing to the old fixed deadline.
        base = self.suspect_after / SUSPICION_THRESHOLD
        silence = now - self._last_seen.setdefault(peer_id, now)
        score = silence / base if base > 0 else float("inf")
        # RTT term: a peer *answering*, but slower than its budget plus
        # four deviations, earns penalty in budget multiples. Gray
        # failure — the node that is up but useless — shows here long
        # before silence alone would, because every reply resets the
        # silence term.
        budget = max(self.gossip_interval, MIN_RTT_BUDGET)
        ewma = self._rtt_ewma.get(peer_id)
        if ewma is not None:
            slack = budget + 4.0 * self._rtt_var.get(peer_id, 0.0)
            if ewma > slack:
                score += (ewma - slack) / budget
        return score

    def suspicion(self, peer_id: str) -> float:
        """This node's current suspicion score for ``peer_id``.

        ``0`` is a freshly-heard healthy peer; the peer is declared
        dead at :data:`SUSPICION_THRESHOLD`.
        """
        with self._lock:
            return self._suspicion_locked(peer_id, self.clock())

    # -- inbound control frames (called from connection handlers) -----------

    def handle_join(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """A node announced itself: admit it, return our membership."""
        info = NodeInfo.from_json(obj.get("node") or {})
        with self._lock:
            self.membership.add(info)
            doc = obj.get("membership")
            if isinstance(doc, dict):
                self._merge_locked(doc)
            self._last_seen[info.node_id] = self.clock()
            self._rebuild_ring_locked()
            log.info(
                "node joined cluster node=%s peer=%s epoch=%d",
                self.node_id, info.node_id, self.membership.epoch,
            )
            return self.membership.to_json()

    def handle_ring(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """A gossip (or client ring-fetch): merge theirs, return ours."""
        with self._lock:
            doc = obj.get("membership")
            if isinstance(doc, dict):
                self._merge_locked(doc)
            peer = obj.get("from")
            if isinstance(peer, str) and peer in self.membership.nodes:
                self._last_seen[peer] = self.clock()
            return self.membership.to_json()

    def handle_owned(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """An ownership notice. ``closed=true`` means the session ended
        cleanly at its owner — drop any replica so a later failover
        cannot resurrect a finished session."""
        session_id = obj.get("session")
        if isinstance(session_id, str) and obj.get("closed"):
            self.replicas.delete(session_id)
            return {"session": session_id, "dropped": True}
        return {"session": session_id}

    def store_replica(self, session_id: str, blob: bytes) -> Dict[str, Any]:
        """Store a peer's checkpoint copy in the replica spool."""
        self.replicas.save_payload(session_id, blob)
        with self._lock:
            self.handoffs_in.inc()
            self.handoff_bytes.inc(len(blob))
        return {"session": session_id, "stored": True}

    def note_import(self, nbytes: int) -> None:
        """Count one inbound *live* handoff (import done by the router)."""
        with self._lock:
            self.handoffs_in.inc()
            self.handoff_bytes.inc(nbytes)
            self.migrations_total.inc()

    def session_closed(self, session_id: str) -> None:
        """A session closed cleanly here: forget its replication state
        and queue a drop notice for its successor's replica."""
        self.replicas.delete(session_id)
        with self._lock:
            self._replicated.pop(session_id, None)
            self._closed.append(session_id)

    # -- the background tick -------------------------------------------------

    def tick(self) -> None:
        """One gossip + failure-detection + migration pass (also called
        directly by tests to step the cluster deterministically)."""
        with tracing.span("cluster.tick", node=self.node_id):
            self._gossip()
            ring = self._detect_failures()
            self._drain_closed(ring)
            self._rebalance(ring)
            self._replicate(ring)
            self._adopt(ring)
            with self._lock:
                self.gossip_ticks.inc()
                self._replica_cache = len(self.replicas.session_ids())

    def _peers(self) -> List[NodeInfo]:
        with self._lock:
            return [
                n for n in self.membership.alive()
                if n.node_id != self.node_id
            ]

    def _net_key(self, peer_id: str) -> str:
        """The directed-link key this node's messages to a peer carry."""
        return f"{self.node_id}->{peer_id}"

    def _gossip(self) -> None:
        doc = self.membership_doc()
        with self._lock:
            deferred, self._deferred_gossip = self._deferred_gossip, []
        deferred_ids = {peer.node_id for peer in deferred}
        # Contacts an injected delay pushed out of the previous round go
        # first, and do not consult the plan again — the delay already
        # fired for them; "lands one round late" must mean exactly that.
        queue: List[Tuple[NodeInfo, bool]] = [(p, True) for p in deferred]
        queue.extend(
            (p, False) for p in self._peers()
            if p.node_id not in deferred_ids
        )
        # Heal probe: one known-dead peer per round, rotating. Without
        # it a partition that ends with both sides marking each other
        # dead is *permanent* — nobody gossips to a dead peer, so no
        # document ever crosses the healed link. The probe carries our
        # doc; a live "dead" peer re-asserts itself (epoch bump) and
        # convergence follows. A genuinely dead peer just refuses the
        # connect.
        with self._lock:
            dead = sorted(
                (
                    n for n in self.membership.nodes.values()
                    if not n.alive and n.node_id != self.node_id
                ),
                key=lambda n: n.node_id,
            )
            rotation = self.gossip_ticks.value
        if dead:
            probe = dead[rotation % len(dead)]
            if probe.node_id not in deferred_ids:
                queue.append((probe, False))
        index = 0
        while index < len(queue):
            peer, exempt = queue[index]
            index += 1
            action = None if exempt else fire("cluster.gossip", key=peer.node_id)
            if action is not None:
                if action.op == "drop":
                    continue  # this contact never happens; the peer ages
                if action.op == "delay":
                    with self._lock:
                        self._deferred_gossip.append(peer)
                    continue
                if action.op == "reorder":
                    # Move to the end of this round, exempt from a
                    # second draw so the rule cannot starve the peer.
                    queue.append((peer, True))
                    continue
            self._contact(peer, doc)
            if action is not None and action.op == "duplicate":
                self._contact(peer, doc)

    def _contact(self, peer: NodeInfo, doc: Dict[str, Any]) -> None:
        started = self.clock()
        try:
            reply = json_call(
                peer.host, peer.port, FrameType.RING,
                {"from": self.node_id, "membership": doc},
                timeout=self.call_timeout,
                net_key=self._net_key(peer.node_id),
            )
        except HandoffError:
            return  # unreachable: suspicion only grows by silence
        rtt = self.clock() - started
        self.note_rtt(peer.node_id, rtt)
        with self._lock:
            self._last_seen[peer.node_id] = self.clock()
            incoming = reply.get("membership")
            if isinstance(incoming, dict):
                self._merge_locked(incoming)

    def _detect_failures(self) -> HashRing:
        now = self.clock()
        with self._lock:
            for peer in list(self.membership.alive()):
                if peer.node_id == self.node_id:
                    continue
                score = self._suspicion_locked(peer.node_id, now)
                if score >= SUSPICION_THRESHOLD:
                    if self.membership.mark_dead(peer.node_id):
                        log.warning(
                            "peer declared dead node=%s peer=%s "
                            "suspicion=%.2f silent=%.1fs rtt_ewma=%.3fs "
                            "epoch=%d",
                            self.node_id, peer.node_id, score,
                            now - self._last_seen.get(peer.node_id, now),
                            self._rtt_ewma.get(peer.node_id, 0.0),
                            self.membership.epoch,
                        )
            self._rebuild_ring_locked()
            return self.ring

    def _drain_closed(self, ring: HashRing) -> None:
        with self._lock:
            closed, self._closed = self._closed, []
            epoch = self.membership.epoch
        for session_id in closed:
            successor = ring.successor(session_id)
            if successor == self.node_id:
                continue
            with self._lock:
                info = self.membership.get(successor)
            if info is None:
                continue
            try:
                json_call(
                    info.host, info.port, FrameType.OWNED,
                    {
                        "from": self.node_id,
                        "session": session_id,
                        "closed": True,
                        "epoch": epoch,
                    },
                    timeout=self.call_timeout,
                    net_key=self._net_key(successor),
                )
            except HandoffError:
                pass  # best-effort; a stale replica loses import conflicts

    def _list_local(self) -> List[Dict[str, Any]]:
        try:
            return self.router.list_sessions()
        except RouterError as exc:
            log.warning(
                "cannot list sessions for cluster pass node=%s: %s",
                self.node_id, exc,
            )
            return []

    def _rebalance(self, ring: HashRing) -> None:
        """Live-migrate every healthy session the ring assigns away."""
        for row in self._list_local():
            if row.get("quarantined"):
                continue  # a poisoned session stays put for its autopsy
            session_id = row["session"]
            owner = ring.owner(session_id)
            if owner == self.node_id:
                continue
            with self._lock:
                info = self.membership.get(owner)
                epoch = self.membership.epoch
            if info is None or not info.alive:
                continue
            try:
                with tracing.span(
                    "cluster.migrate",
                    session=session_id,
                    source=self.node_id,
                    target=owner,
                ):
                    ack = migrate_session(
                        self.router, session_id, info.host, info.port,
                        timeout=self.call_timeout,
                        epoch=epoch, origin=self.node_id,
                        net_key=self._net_key(owner),
                    )
            except StaleEpochError as exc:
                # The target's view is ahead of ours; the session was
                # re-imported locally and will move after gossip
                # catches us up — next tick, usually.
                with self._lock:
                    self.fenced_out.inc()
                log.warning(
                    "migration fenced session=%s node=%s epoch=%d: %s",
                    session_id, self.node_id, epoch, exc,
                )
                continue
            except RouterError as exc:
                log.warning(
                    "migration export failed session=%s node=%s: %s",
                    session_id, self.node_id, exc,
                )
                continue
            with self._lock:
                self._replicated.pop(session_id, None)
                if ack is not None:
                    self.migrations_total.inc()
                    self.handoffs_out.inc()
            if ack is not None:
                log.info(
                    "session migrated session=%s %s -> %s position=%s",
                    session_id, self.node_id, owner, ack.get("position"),
                )

    def _replicate(self, ring: HashRing) -> None:
        """Ship checkpoint copies of advanced sessions to successors."""
        owned = []
        for row in self._list_local():
            session_id = row["session"]
            if ring.owner(session_id) != self.node_id:
                continue
            owned.append(row)
            if row.get("quarantined"):
                continue
            successor = ring.successor(session_id)
            if successor == self.node_id:
                continue  # a 1-node ring has nowhere to replicate
            with self._lock:
                done = self._replicated.get(session_id, -1)
            if row["position"] <= done:
                continue
            with self._lock:
                info = self.membership.get(successor)
                epoch = self.membership.epoch
            if info is None or not info.alive:
                continue
            try:
                shipped = replicate_session(
                    self.router, session_id, info.host, info.port,
                    timeout=self.call_timeout,
                    epoch=epoch, origin=self.node_id,
                    net_key=self._net_key(successor),
                )
            except StaleEpochError:
                with self._lock:
                    self.fenced_out.inc()
                continue  # gossip will catch us up; retry next tick
            except RouterError as exc:
                log.warning(
                    "replication export failed session=%s node=%s: %s",
                    session_id, self.node_id, exc,
                )
                continue
            if shipped:
                with self._lock:
                    self._replicated[session_id] = row["position"]
                    self.handoffs_out.inc()
                    self.handoff_bytes.inc(shipped)
        with self._lock:
            self._owned_cache = owned

    def _adopt(self, ring: HashRing) -> None:
        """Import replica checkpoints the ring now assigns to us —
        their owner died and we are the failover target."""
        local = {row["session"] for row in self._list_local()}
        for session_id in self.replicas.session_ids():
            if ring.owner(session_id) != self.node_id:
                continue
            if session_id in local:
                self.replicas.delete(session_id)  # superseded by live state
                continue
            try:
                blob = self.replicas.load_payload(session_id)
                info = self.router.import_session(session_id, blob)
            except (RecoveryError, RouterError) as exc:
                log.error(
                    "replica adoption failed session=%s node=%s: %s",
                    session_id, self.node_id, exc,
                )
                self.replicas.quarantine(session_id)
                continue
            self.replicas.delete(session_id)
            with self._lock:
                self.migrations_total.inc()
            log.warning(
                "replica adopted after failover session=%s node=%s "
                "position=%s",
                session_id, self.node_id, info.get("position"),
            )

    # -- stats ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``cluster`` block of a STATS reply (cheap: no shard or
        peer calls — session counts come from the last tick's cache)."""
        now = self.clock()
        with self._lock:
            peers = [
                {
                    "node": info.node_id,
                    "address": info.address,
                    "status": info.status,
                    "silent_seconds": round(
                        now - self._last_seen.get(info.node_id, now), 3
                    ),
                    "suspicion": round(
                        self._suspicion_locked(info.node_id, now), 3
                    ),
                    "rtt_ms": round(
                        self._rtt_ewma.get(info.node_id, 0.0) * 1000.0, 3
                    ),
                }
                for info in sorted(
                    self.membership.nodes.values(), key=lambda n: n.node_id
                )
                if info.node_id != self.node_id
            ]
            return {
                "node": self.node_id,
                "epoch": self.membership.epoch,
                "ring": {
                    "nodes": list(self.ring.nodes),
                    "vnodes": self.vnodes,
                },
                "peers": peers,
                "sessions_owned": len(self._owned_cache),
                "replicas_held": self._replica_cache,
                "migrations_total": self.migrations_total.value,
                "handoffs_in": self.handoffs_in.value,
                "handoffs_out": self.handoffs_out.value,
                "handoff_bytes": self.handoff_bytes.value,
                "redirects": self.redirects.value,
                "gossip_ticks": self.gossip_ticks.value,
                "fenced_out": self.fenced_out.value,
            }
