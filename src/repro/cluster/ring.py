"""The consistent-hash ring: who owns a session id.

Every node in the cluster builds the **same** ring from the same
membership view: each node id is expanded into ``vnodes`` virtual
points (CRC32 of ``"<node>#<replica>"`` — the same stable hash the
shard router uses for session→shard placement), the points are sorted
on a 32-bit circle, and a session id is owned by the first point
clockwise of its own hash. Virtual nodes smooth the distribution
(with tens of points per node the largest arc is within a small factor
of fair) and make rebalancing incremental: adding or removing one node
moves only the sessions on the arcs it gains or loses — roughly
``1/n`` of them — instead of reshuffling everything the way
``hash % n`` would.

The ring is deterministic and immutable: two nodes holding the same
membership epoch compute identical owners, which is what lets clients
route ``HELLO`` frames to the owning node without a coordinator in the
request path. Ownership changes only when membership changes (a new
epoch), and the seam is absorbed by ``REDIRECT`` replies plus the
positioned-frame resync.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Tuple

#: Virtual points each node contributes to the ring.
DEFAULT_VNODES = 64


class RingError(ValueError):
    """The ring cannot answer (no nodes, bad arguments)."""


def _hash(key: str) -> int:
    """The ring hash — CRC32, same family as the shard router's."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """An immutable consistent-hash ring over node ids.

    Args:
        nodes: The member node ids (order-insensitive; duplicates
            collapse).
        vnodes: Virtual points per node — more points, smoother
            distribution, linearly larger ring.
    """

    __slots__ = ("nodes", "vnodes", "_points", "_owners")

    def __init__(
        self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise RingError("vnodes must be >= 1")
        self.nodes: Tuple[str, ...] = tuple(sorted(set(nodes)))
        if not self.nodes:
            raise RingError("a ring needs at least one node")
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((_hash(f"{node}#{replica}"), node))
        # Ties (two vnodes hashing identically) break by node id so
        # every member sorts the circle identically.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        idx = bisect.bisect_right(self._points, _hash(key))
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._owners[idx]

    def preference(self, key: str, n: int = 2) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise of ``key``.

        ``preference(key)[0]`` is the owner; the rest are the replica
        successors a checkpoint is shipped to for failover.
        """
        if n < 1:
            raise RingError("preference list length must be >= 1")
        start = bisect.bisect_right(self._points, _hash(key))
        out: List[str] = []
        total = len(self._points)
        for step in range(total):
            node = self._owners[(start + step) % total]
            if node not in out:
                out.append(node)
                if len(out) == n:
                    break
        return out

    def successor(self, key: str) -> str:
        """The replica node for ``key``: the first distinct node after
        the owner. With a single-node ring this is the owner itself
        (there is nowhere else to replicate)."""
        pref = self.preference(key, n=2)
        return pref[1] if len(pref) > 1 else pref[0]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """Owned-key counts per node (diagnostics and tests)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
