"""Ring-aware client: route each session to its owning node.

:class:`ClusterClient` holds a list of seed addresses and keeps a
local copy of the cluster's membership + ring (fetched with a ``RING``
frame from any reachable node — the reply carries the membership
document and the ring's vnode count, so the client computes the same
owner every server does). :meth:`ClusterClient.submit_trace` then
drives the ordinary single-node :func:`repro.service.client.submit_trace`
against the owner, healing every cluster seam:

* **REDIRECT** — ownership moved mid-epoch (a node joined and the
  session migrated): follow the redirect target and resume.
* **FENCED** — the routed-to node's membership view is behind the
  epoch this client stamped on its HELLO (it is the stale side of a
  healing partition): nothing was written; back off a beat, re-fetch
  the ring, resume at whatever the healed ring says.
* **unreachable / reset / shard crash** — the owner died: back off,
  re-fetch the ring from the survivors (who declare the death within
  one suspicion window), and resume against the new owner. The
  ``lenient`` HELLO means a session whose checkpoint never reached a
  replica simply restarts from position 0 — the client re-sends and
  positioned frames keep the replay idempotent either way. A restart
  from zero is never silent: the report carries
  ``service.restarted_from_zero`` and ``repro submit`` maps it to a
  distinct exit code.

Every retry is paced by the shared :class:`~repro.service.backoff.Backoff`
policy and bounded by ``attempts`` and the wall-clock ``deadline``.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..service import protocol
from ..service.backoff import Backoff
from ..service.client import (
    DEFAULT_BATCH,
    ServiceClient,
    ServiceError,
    ServiceUnreachable,
    SessionFenced,
    SessionRedirect,
    _Deadline,
    _retryable,
    submit_trace as _submit_to_node,
)
from ..service.protocol import FrameType
from ..trace.events import Event
from .membership import NodeInfo, parse_membership
from .migration import DEFAULT_CALL_TIMEOUT, HandoffError, json_call
from .ring import DEFAULT_VNODES, HashRing

#: Outer routing attempts (each may spend a couple of inner reconnects).
DEFAULT_CLUSTER_ATTEMPTS = 10


class ClusterError(ServiceError):
    """No cluster node could be reached or the routing gave out."""

    def __init__(self, message: str) -> None:
        super().__init__("cluster", message)


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` -> ``(host, port)`` (the CLI ``--nodes`` format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad node address {address!r} (want host:port)")
    return host, int(port)


class ClusterClient:
    """A routing front end over a set of ``repro serve`` cluster nodes.

    Args:
        nodes: Seed addresses (``host:port``); one live node is enough,
            the membership fetch finds the rest.
        call_timeout: Seconds a ring fetch may take per node.
        jitter_seed: Seed for deterministic retry pacing.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if not nodes:
            raise ValueError("a cluster client needs at least one seed node")
        self.seeds: List[Tuple[str, int]] = [parse_address(a) for a in nodes]
        self.call_timeout = call_timeout
        self.jitter_seed = jitter_seed
        self.epoch = -1
        self.vnodes = DEFAULT_VNODES
        self.members: Dict[str, NodeInfo] = {}
        self.ring: Optional[HashRing] = None

    # -- the membership/ring view -------------------------------------------

    def _candidates(self) -> List[Tuple[str, int]]:
        """Known member addresses first (fresher), then the seeds."""
        out: List[Tuple[str, int]] = [
            (info.host, info.port)
            for info in sorted(self.members.values(), key=lambda n: n.node_id)
            if info.alive
        ]
        for seed in self.seeds:
            if seed not in out:
                out.append(seed)
        return out

    def refresh(self) -> int:
        """Fetch the membership from any reachable node; returns the
        epoch. Raises :class:`ClusterError` when no node answers."""
        last: Optional[Exception] = None
        for host, port in self._candidates():
            try:
                reply = json_call(
                    host, port, FrameType.RING, {},
                    timeout=self.call_timeout,
                )
            except (HandoffError, OSError) as exc:
                last = exc
                continue
            doc = reply.get("membership")
            if not isinstance(doc, dict):
                last = ClusterError(
                    f"node {host}:{port} is not clustered "
                    f"(RING reply carries no membership)"
                )
                continue
            epoch, nodes = parse_membership(doc)
            self.epoch = epoch
            self.vnodes = int(reply.get("vnodes", self.vnodes))
            self.members = nodes
            alive = [n.node_id for n in nodes.values() if n.alive]
            self.ring = HashRing(alive, self.vnodes) if alive else None
            return epoch
        raise ClusterError(
            f"no cluster node reachable "
            f"(tried {len(self._candidates())}): {last}"
        )

    def owner_of(self, session_id: str) -> Tuple[str, int]:
        """The owning node's address (refreshing the ring if needed)."""
        if self.ring is None:
            self.refresh()
        assert self.ring is not None
        info = self.members.get(self.ring.owner(session_id))
        if info is None:
            raise ClusterError(f"no address for owner of {session_id!r}")
        return info.host, info.port

    # -- the streaming surface ----------------------------------------------

    def submit_trace(
        self,
        events: Iterable[Event],
        analyses: Sequence[Union[str, Dict[str, Any]]],
        name: str = "stream",
        batch: int = DEFAULT_BATCH,
        encoding: str = "text",
        packed: bool = False,
        session_id: Optional[str] = None,
        resume: bool = False,
        stop_after: Optional[int] = None,
        checkpoint: bool = False,
        deadline: Optional[float] = None,
        attempts: int = DEFAULT_CLUSTER_ATTEMPTS,
    ) -> Dict[str, Any]:
        """Stream a trace to whichever node owns its session.

        Same contract as the single-node
        :func:`~repro.service.client.submit_trace`, plus routing: the
        session id (generated here when not given, so routing is
        stable) picks the owner via the ring; redirects are followed;
        a dead owner is survived by re-fetching the ring and resuming
        against the failover target with a lenient HELLO.
        """
        all_events = list(events)
        session_id = session_id or uuid.uuid4().hex
        budget = _Deadline(deadline)
        backoff = Backoff(seed=self.jitter_seed)
        pinned: Optional[Tuple[str, int]] = None  # a REDIRECT target
        resume_flag = resume
        last: Optional[Exception] = None
        for _attempt in range(attempts):
            budget.remaining(f"routing session {session_id}")
            if pinned is not None:
                host, port = pinned
                pinned = None
            else:
                try:
                    self.refresh()
                    host, port = self.owner_of(session_id)
                except ClusterError as exc:
                    last = exc
                    budget.sleep(backoff.next(), "waiting for a live node")
                    continue
            try:
                return _submit_to_node(
                    host, port, all_events, analyses,
                    name=name, batch=batch, encoding=encoding,
                    packed=packed, session_id=session_id,
                    resume=resume_flag, lenient=True,
                    stop_after=stop_after, checkpoint=checkpoint,
                    deadline=budget.remaining("streaming"),
                    attempts=2, jitter_seed=self.jitter_seed,
                    epoch=self.epoch if self.epoch >= 0 else None,
                )
            except SessionFenced as exc:
                # The node we routed to is behind the epoch we routed
                # by (a healing partition). Nothing was written; give
                # gossip a beat, re-fetch, resume wherever the healed
                # ring points.
                last = exc
                resume_flag = True
                budget.sleep(
                    backoff.next(), "waiting for the owner's view to heal"
                )
                continue
            except SessionRedirect as redirect:
                # Ownership moved mid-epoch: follow without a backoff —
                # the target is authoritative and already has the
                # migrated checkpoint.
                pinned = (redirect.host, redirect.port)
                resume_flag = True
                last = redirect
                continue
            except ServiceUnreachable as exc:
                # The owner is gone. The survivors declare it dead
                # within one suspicion window and adopt its replicas;
                # back off, re-fetch the ring, resume at the new owner.
                last = exc
                resume_flag = True
                budget.sleep(backoff.next(), "waiting for ring heal")
                continue
            except ServiceError as exc:
                if not _retryable(exc):
                    raise
                last = exc
                resume_flag = True
                budget.sleep(backoff.next(), "retrying after service error")
                continue
        raise ClusterError(
            f"session {session_id!r} failed after {attempts} routing "
            f"attempts: {last}"
        )

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """STATS from every reachable member, keyed by node id."""
        if self.ring is None:
            self.refresh()
        out: Dict[str, Dict[str, Any]] = {}
        for node_id, info in sorted(self.members.items()):
            if not info.alive:
                continue
            try:
                with ServiceClient(
                    info.host, info.port, connect_timeout=self.call_timeout
                ) as client:
                    out[node_id] = client.stats()
            except (ServiceError, protocol.WireError, OSError):
                continue
        return out
