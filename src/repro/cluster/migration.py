"""Shipping sessions between nodes: the HANDOFF path.

A migration is *checkpoint + move*: the source shard freezes the
session into the exact blob its spool stores (``Router.export_session``
— checkpoint, then drop), the blob travels in one ``HANDOFF`` frame,
and the target shard adopts it (``Router.import_session`` — thaw,
higher-position-wins on conflict, re-spool). Replication is the same
frame with ``live=false``: the source keeps running and the target only
stores the blob in its replica spool, to be adopted if the owner dies.

Everything here is a *client* of a peer node: each call opens a fresh
connection, speaks one frame, reads one reply, and hangs up — no
connection pooling, no partial state to clean up after a peer dies
mid-call. At-least-once semantics are free: a duplicated HANDOFF is
absorbed by the import conflict rule, a dropped one is retried by the
next gossip tick (replication) or undone locally (live migration).

Fault site (see :mod:`repro.faults`): ``cluster.handoff`` — ``drop``
(the frame never leaves the node) or ``duplicate`` (it is sent twice).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple

from ..faults.injector import fire
from ..service import protocol
from ..service.protocol import FrameType

#: Seconds one peer call (connect + one round trip) may take.
DEFAULT_CALL_TIMEOUT = 5.0


class HandoffError(RuntimeError):
    """A peer call failed (unreachable, protocol error, ERROR reply)."""


def node_call(
    host: str,
    port: int,
    frame: bytes,
    timeout: float = DEFAULT_CALL_TIMEOUT,
) -> Tuple[int, bytes]:
    """One fresh-connection round trip to a peer node.

    Sends ``frame``, reads exactly one reply frame, closes. Returns
    ``(type, payload)``; an ``ERROR`` reply or any transport/framing
    failure raises :class:`HandoffError` — callers treat every failure
    the same way (retry next tick, or undo).
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(frame)
            with sock.makefile("rb") as rfile:
                reply = protocol.read_frame(rfile)
    except (OSError, protocol.WireError) as exc:
        raise HandoffError(f"peer {host}:{port}: {exc}") from exc
    if reply is None:
        raise HandoffError(f"peer {host}:{port} closed without replying")
    ftype, payload = reply
    if ftype == FrameType.ERROR:
        obj = protocol.decode_json(payload)
        raise HandoffError(
            f"peer {host}:{port} answered ERROR "
            f"[{obj.get('code', 'unknown')}] {obj.get('message', '')}"
        )
    return ftype, payload


def json_call(
    host: str,
    port: int,
    ftype: int,
    obj: Dict[str, Any],
    timeout: float = DEFAULT_CALL_TIMEOUT,
) -> Dict[str, Any]:
    """A JSON request/reply round trip (JOIN and RING frames)."""
    _rtype, payload = node_call(
        host, port, protocol.encode_json(ftype, obj), timeout=timeout
    )
    return protocol.decode_json(payload) if payload else {}


def ship_handoff(
    host: str,
    port: int,
    meta: Dict[str, Any],
    blob: bytes,
    timeout: float = DEFAULT_CALL_TIMEOUT,
) -> Dict[str, Any]:
    """Ship one frozen session checkpoint to a peer in a HANDOFF frame.

    Returns the peer's OWNED acknowledgment (``{"session", "position",
    "imported"}`` for a live move, ``{"session", "stored"}`` for a
    replica). Raises :class:`HandoffError` on any failure — including
    an injected ``cluster.handoff drop``, which callers must treat
    exactly like a vanished frame.
    """
    frame = protocol.encode_frame(
        FrameType.HANDOFF, protocol.encode_handoff(meta, blob)
    )
    action = fire("cluster.handoff", key=meta.get("session"))
    if action is not None and action.op == "drop":
        raise HandoffError(
            f"[injected] handoff of session {meta.get('session')!r} "
            f"to {host}:{port} dropped"
        )
    ftype, payload = node_call(host, port, frame, timeout=timeout)
    if ftype != FrameType.OWNED:
        raise HandoffError(
            f"peer {host}:{port} answered frame type {ftype} "
            f"to a HANDOFF (want OWNED)"
        )
    if action is not None and action.op == "duplicate":
        # At-least-once delivery: the same blob lands twice; the
        # import conflict rule (higher position wins, equal is a no-op)
        # makes the duplicate harmless. Best-effort — if the second
        # send fails the first already succeeded.
        try:
            node_call(host, port, frame, timeout=timeout)
        except HandoffError:
            pass
    return protocol.decode_json(payload) if payload else {}


def migrate_session(
    router,
    session_id: str,
    host: str,
    port: int,
    timeout: float = DEFAULT_CALL_TIMEOUT,
) -> Optional[Dict[str, Any]]:
    """Live-migrate one session: export (checkpoint + drop) then ship.

    If shipping fails the exported blob is **re-imported locally** —
    the session must never be lost to a dead target; it simply stays
    here until the next rebalance pass. Returns the peer's OWNED ack,
    or ``None`` when the move was undone.
    """
    out = router.export_session(session_id)
    meta = dict(out["meta"])
    meta["live"] = True
    try:
        return ship_handoff(host, port, meta, out["blob"], timeout=timeout)
    except HandoffError:
        router.import_session(session_id, out["blob"])
        return None


def replicate_session(
    router,
    session_id: str,
    host: str,
    port: int,
    timeout: float = DEFAULT_CALL_TIMEOUT,
) -> int:
    """Ship a *copy* of one session's checkpoint to its ring successor.

    The original keeps running; the peer stores the blob in its replica
    spool for failover adoption. Returns the bytes shipped (0 when the
    handoff failed — the next tick retries).
    """
    out = router.export_checkpoint(session_id)
    meta = dict(out["meta"])
    meta["live"] = False
    try:
        ship_handoff(host, port, meta, out["blob"], timeout=timeout)
    except HandoffError:
        return 0
    return len(out["blob"])
