"""Shipping sessions between nodes: the HANDOFF path.

A migration is *checkpoint + move*: the source shard freezes the
session into the exact blob its spool stores (``Router.export_session``
— checkpoint, then drop), the blob travels in one ``HANDOFF`` frame,
and the target shard adopts it (``Router.import_session`` — thaw,
higher-position-wins on conflict, re-spool). Replication is the same
frame with ``live=false``: the source keeps running and the target only
stores the blob in its replica spool, to be adopted if the owner dies.

Every HANDOFF meta carries the sender's membership ``epoch`` and
``origin`` node id. A receiver whose own epoch is ahead answers
``FENCED`` instead of importing — a partitioned old owner cannot push
stale state into the healed ring; it re-imports locally and retries
after its next gossip merge catches it up
(:class:`StaleEpochError`).

Everything here is a *client* of a peer node: each call opens a fresh
connection, speaks one frame, reads one reply, and hangs up — no
connection pooling, no partial state to clean up after a peer dies
mid-call. At-least-once semantics are free: a duplicated HANDOFF is
absorbed by the import conflict rule, a dropped one is retried by the
next gossip tick (replication) or undone locally (live migration).

Fault sites (see :mod:`repro.faults`): ``cluster.handoff`` — ``drop``
(the frame never leaves the node) or ``duplicate`` (it is sent twice);
``net.partition`` — ``drop`` one directed node-to-node message, keyed
``"src->dst"`` so match rules carve one-way and two-way partitions.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple

from ..faults.injector import fire
from ..service import protocol
from ..service.protocol import FrameType

#: Seconds one peer call (connect + one round trip) may take.
DEFAULT_CALL_TIMEOUT = 5.0


class HandoffError(RuntimeError):
    """A peer call failed (unreachable, protocol error, ERROR reply)."""


class StaleEpochError(HandoffError):
    """The peer fenced the call: our membership epoch is behind its.

    Carries the peer's epoch in :attr:`peer_epoch` so the caller can
    log how far behind it is; recovery is always the same — gossip
    catches the local view up, then the next tick retries.
    """

    def __init__(self, message: str, peer_epoch: int = 0) -> None:
        super().__init__(message)
        self.peer_epoch = peer_epoch


def _fire_partition(net_key: Optional[str], what: str) -> None:
    """The ``net.partition`` site: one directed message may vanish."""
    if net_key is None:
        return
    action = fire("net.partition", key=net_key)
    if action is not None and action.op == "drop":
        raise HandoffError(
            f"[injected] partition dropped {what} on link {net_key}"
        )


def node_call(
    host: str,
    port: int,
    frame: bytes,
    timeout: float = DEFAULT_CALL_TIMEOUT,
    net_key: Optional[str] = None,
) -> Tuple[int, bytes]:
    """One fresh-connection round trip to a peer node.

    Sends ``frame``, reads exactly one reply frame, closes. Returns
    ``(type, payload)``; an ``ERROR`` reply or any transport/framing
    failure raises :class:`HandoffError` — callers treat every failure
    the same way (retry next tick, or undo). A ``FENCED`` reply raises
    :class:`StaleEpochError` (a :class:`HandoffError` subtype): the
    peer's membership epoch is ahead of the one the frame carried.

    ``net_key`` (``"src->dst"``) arms the ``net.partition`` fault site
    for this one directed message.
    """
    _fire_partition(net_key, "a peer call")
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(frame)
            with sock.makefile("rb") as rfile:
                reply = protocol.read_frame(rfile)
    except (OSError, protocol.WireError) as exc:
        raise HandoffError(f"peer {host}:{port}: {exc}") from exc
    if reply is None:
        raise HandoffError(f"peer {host}:{port} closed without replying")
    ftype, payload = reply
    if ftype == FrameType.FENCED:
        obj = protocol.decode_json(payload) if payload else {}
        raise StaleEpochError(
            f"peer {host}:{port} fenced the call at epoch "
            f"{obj.get('epoch')}: {obj.get('message', 'stale epoch')}",
            peer_epoch=int(obj.get("epoch", 0) or 0),
        )
    if ftype == FrameType.ERROR:
        obj = protocol.decode_json(payload)
        raise HandoffError(
            f"peer {host}:{port} answered ERROR "
            f"[{obj.get('code', 'unknown')}] {obj.get('message', '')}"
        )
    return ftype, payload


def json_call(
    host: str,
    port: int,
    ftype: int,
    obj: Dict[str, Any],
    timeout: float = DEFAULT_CALL_TIMEOUT,
    net_key: Optional[str] = None,
) -> Dict[str, Any]:
    """A JSON request/reply round trip (JOIN, RING and OWNED frames)."""
    _rtype, payload = node_call(
        host, port, protocol.encode_json(ftype, obj), timeout=timeout,
        net_key=net_key,
    )
    return protocol.decode_json(payload) if payload else {}


def ship_handoff(
    host: str,
    port: int,
    meta: Dict[str, Any],
    blob: bytes,
    timeout: float = DEFAULT_CALL_TIMEOUT,
    net_key: Optional[str] = None,
) -> Dict[str, Any]:
    """Ship one frozen session checkpoint to a peer in a HANDOFF frame.

    Returns the peer's OWNED acknowledgment (``{"session", "position",
    "imported"}`` for a live move, ``{"session", "stored"}`` for a
    replica). Raises :class:`HandoffError` on any failure — including
    an injected ``cluster.handoff drop``, which callers must treat
    exactly like a vanished frame — and :class:`StaleEpochError` when
    the peer fenced the shipment (its epoch is ahead of ``meta``'s).
    """
    frame = protocol.encode_frame(
        FrameType.HANDOFF, protocol.encode_handoff(meta, blob)
    )
    action = fire("cluster.handoff", key=meta.get("session"))
    if action is not None and action.op == "drop":
        raise HandoffError(
            f"[injected] handoff of session {meta.get('session')!r} "
            f"to {host}:{port} dropped"
        )
    ftype, payload = node_call(
        host, port, frame, timeout=timeout, net_key=net_key
    )
    if ftype != FrameType.OWNED:
        raise HandoffError(
            f"peer {host}:{port} answered frame type {ftype} "
            f"to a HANDOFF (want OWNED)"
        )
    if action is not None and action.op == "duplicate":
        # At-least-once delivery: the same blob lands twice; the
        # import conflict rule (higher position wins, equal is a no-op)
        # makes the duplicate harmless. Best-effort — if the second
        # send fails the first already succeeded.
        try:
            node_call(host, port, frame, timeout=timeout, net_key=net_key)
        except HandoffError:
            pass
    return protocol.decode_json(payload) if payload else {}


def migrate_session(
    router,
    session_id: str,
    host: str,
    port: int,
    timeout: float = DEFAULT_CALL_TIMEOUT,
    epoch: Optional[int] = None,
    origin: Optional[str] = None,
    net_key: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """Live-migrate one session: export (checkpoint + drop) then ship.

    ``epoch``/``origin`` stamp the HANDOFF meta with the sender's
    membership view so the receiver can fence a stale shipment. If
    shipping fails — unreachable peer, injected drop, or an epoch
    fence — the exported blob is **re-imported locally**: the session
    must never be lost to a dead (or fresher) target; it simply stays
    here until the next rebalance pass, after gossip has caught the
    local view up. Returns the peer's OWNED ack, or ``None`` when the
    move was undone. A fence re-raises :class:`StaleEpochError` *after*
    the local undo so the caller can count it.
    """
    out = router.export_session(session_id)
    meta = dict(out["meta"])
    meta["live"] = True
    if epoch is not None:
        meta["epoch"] = epoch
    if origin is not None:
        meta["origin"] = origin
    try:
        return ship_handoff(
            host, port, meta, out["blob"], timeout=timeout, net_key=net_key
        )
    except StaleEpochError:
        router.import_session(session_id, out["blob"])
        raise
    except HandoffError:
        router.import_session(session_id, out["blob"])
        return None


def replicate_session(
    router,
    session_id: str,
    host: str,
    port: int,
    timeout: float = DEFAULT_CALL_TIMEOUT,
    epoch: Optional[int] = None,
    origin: Optional[str] = None,
    net_key: Optional[str] = None,
) -> int:
    """Ship a *copy* of one session's checkpoint to its ring successor.

    The original keeps running; the peer stores the blob in its replica
    spool for failover adoption. Returns the bytes shipped (0 when the
    handoff failed — the next tick retries); an epoch fence re-raises
    :class:`StaleEpochError` so the caller can count it.
    """
    out = router.export_checkpoint(session_id)
    meta = dict(out["meta"])
    meta["live"] = False
    if epoch is not None:
        meta["epoch"] = epoch
    if origin is not None:
        meta["origin"] = origin
    try:
        ship_handoff(
            host, port, meta, out["blob"], timeout=timeout, net_key=net_key
        )
    except StaleEpochError:
        raise
    except HandoffError:
        return 0
    return len(out["blob"])
