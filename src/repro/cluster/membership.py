"""Versioned cluster membership — the gossip document.

A :class:`Membership` is the node set plus one monotonically growing
**epoch**. Every mutation that changes ownership (a node joining, a
node marked dead) bumps the epoch, and gossip merges resolve entirely
on it: a higher epoch replaces the local view wholesale, an equal
epoch unions node-by-node (``dead`` beats ``alive`` — death is an
absorbing state within an epoch), and a lower epoch is ignored. That
rule is what keeps a killed node from being resurrected by a slow
gossiper still holding the old view: the survivor that detected the
death bumped the epoch, so its document dominates.

The document serializes to JSON and travels in ``JOIN``/``RING``
control frames (see :mod:`repro.service.protocol`); clients fetch the
same document to build their routing ring. A node that finds *itself*
marked dead in a merged view (it was partitioned or stalled past the
suspicion deadline) re-asserts itself: it bumps the epoch and rejoins
alive, and the bumped document wins the next gossip round.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

#: Status values a member can be in.
ALIVE = "alive"
DEAD = "dead"


class MembershipError(ValueError):
    """A membership document is malformed."""


@dataclass(frozen=True)
class NodeInfo:
    """One cluster member: identity, reachable address, liveness."""

    node_id: str
    host: str
    port: int
    status: str = ALIVE

    @property
    def alive(self) -> bool:
        return self.status == ALIVE

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "node": self.node_id,
            "host": self.host,
            "port": self.port,
            "status": self.status,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "NodeInfo":
        try:
            node_id = doc["node"]
            host = doc["host"]
            port = doc["port"]
        except (KeyError, TypeError) as exc:
            raise MembershipError(f"bad node entry {doc!r}") from exc
        status = doc.get("status", ALIVE)
        if (
            not isinstance(node_id, str)
            or not isinstance(host, str)
            or not isinstance(port, int)
            or status not in (ALIVE, DEAD)
        ):
            raise MembershipError(f"bad node entry {doc!r}")
        return cls(node_id=node_id, host=host, port=port, status=status)


class Membership:
    """The epoch-versioned node set one cluster node believes in.

    Not thread-safe by itself — the coordinator serializes access.
    """

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self.nodes: Dict[str, NodeInfo] = {}

    # -- mutation (every ownership change bumps the epoch) ------------------

    def add(self, info: NodeInfo) -> bool:
        """Add or revive a member; returns True if the view changed."""
        current = self.nodes.get(info.node_id)
        if current is not None and current == info:
            return False
        self.nodes[info.node_id] = info
        self.epoch += 1
        return True

    def mark_dead(self, node_id: str) -> bool:
        """Declare a member dead; returns True if the view changed."""
        current = self.nodes.get(node_id)
        if current is None or current.status == DEAD:
            return False
        self.nodes[node_id] = replace(current, status=DEAD)
        self.epoch += 1
        return True

    # -- queries -------------------------------------------------------------

    def get(self, node_id: str) -> Optional[NodeInfo]:
        return self.nodes.get(node_id)

    def alive(self) -> List[NodeInfo]:
        """Live members, sorted by node id (deterministic ring input)."""
        return sorted(
            (n for n in self.nodes.values() if n.alive),
            key=lambda n: n.node_id,
        )

    def alive_ids(self) -> List[str]:
        return [n.node_id for n in self.alive()]

    # -- gossip merge --------------------------------------------------------

    def merge(self, doc: Dict[str, Any]) -> bool:
        """Fold a peer's membership document in; True if we changed.

        Higher epoch replaces wholesale; equal epoch unions with
        ``dead`` absorbing; lower epoch is ignored.

        Raises:
            MembershipError: On a malformed document.
        """
        epoch, incoming = parse_membership(doc)
        if epoch < self.epoch:
            return False
        if epoch > self.epoch:
            changed = (
                self.nodes != incoming or self.epoch != epoch
            )
            self.epoch = epoch
            self.nodes = dict(incoming)
            return changed
        changed = False
        for node_id, info in incoming.items():
            current = self.nodes.get(node_id)
            if current is None:
                self.nodes[node_id] = info
                changed = True
            elif current.alive and not info.alive:
                self.nodes[node_id] = info
                changed = True
        return changed

    # -- JSON ---------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "nodes": [
                self.nodes[node_id].to_json()
                for node_id in sorted(self.nodes)
            ],
        }


def parse_membership(
    doc: Dict[str, Any]
) -> "tuple[int, Dict[str, NodeInfo]]":
    """Validate a membership document -> ``(epoch, nodes)``.

    Raises:
        MembershipError: On a malformed document.
    """
    if not isinstance(doc, dict):
        raise MembershipError("membership must be an object")
    epoch = doc.get("epoch")
    if not isinstance(epoch, int) or epoch < 0:
        raise MembershipError(f"bad membership epoch {epoch!r}")
    raw = doc.get("nodes")
    if not isinstance(raw, list):
        raise MembershipError("membership nodes must be a list")
    nodes: Dict[str, NodeInfo] = {}
    for entry in raw:
        info = NodeInfo.from_json(entry)
        nodes[info.node_id] = info
    return epoch, nodes
