"""Concurrent-program model.

The paper logs traces from Java programs with RoadRunner; we have no JVM,
so this package models concurrent programs directly: a
:class:`Program` is a set of named threads, each a straight-line list of
:class:`Stmt` statements mirroring the loggable operations (read, write,
acquire, release, fork, join, begin, end). A scheduler
(:mod:`repro.sim.scheduler`) interleaves the threads and the runtime
(:mod:`repro.sim.runtime`) emits the resulting well-formed trace.

Straight-line bodies are not a loss of generality for *trace* generation:
a trace is one resolved execution, so loops and branches are unrolled by
the workload builders (:mod:`repro.sim.workloads`), the same way a logged
Java execution has them unrolled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union


class Stmt:
    """Base class for program statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Read(Stmt):
    """Read a shared memory location."""

    var: str


@dataclass(frozen=True)
class Write(Stmt):
    """Write a shared memory location."""

    var: str


@dataclass(frozen=True)
class Acquire(Stmt):
    """Acquire a lock (re-entrant; blocks while another thread holds it)."""

    lock: str


@dataclass(frozen=True)
class Release(Stmt):
    """Release a lock held by this thread."""

    lock: str


@dataclass(frozen=True)
class Fork(Stmt):
    """Start another thread of the program."""

    thread: str


@dataclass(frozen=True)
class Join(Stmt):
    """Wait until another thread has executed all of its statements."""

    thread: str


@dataclass(frozen=True)
class Begin(Stmt):
    """Enter an atomic block (optionally labeled with a method name)."""

    label: Optional[str] = None


@dataclass(frozen=True)
class End(Stmt):
    """Leave the innermost atomic block."""

    label: Optional[str] = None


StmtLike = Union[Stmt, Iterable["StmtLike"]]


def flatten(statements: Iterable[StmtLike]) -> List[Stmt]:
    """Flatten arbitrarily nested statement lists (builder convenience)."""
    flat: List[Stmt] = []
    for item in statements:
        if isinstance(item, Stmt):
            flat.append(item)
        else:
            flat.extend(flatten(item))
    return flat


def atomic(*body: StmtLike, label: Optional[str] = None) -> List[Stmt]:
    """Wrap ``body`` in a begin/end pair."""
    return [Begin(label), *flatten(body), End(label)]


def locked(lock: str, *body: StmtLike) -> List[Stmt]:
    """Wrap ``body`` in acquire/release of ``lock``."""
    return [Acquire(lock), *flatten(body), Release(lock)]


@dataclass
class ThreadBody:
    """One program thread: a name and its statements."""

    name: str
    statements: List[Stmt] = field(default_factory=list)

    def extend(self, *statements: StmtLike) -> "ThreadBody":
        self.statements.extend(flatten(statements))
        return self

    def __len__(self) -> int:
        return len(self.statements)


class ProgramError(ValueError):
    """The program structure is invalid (bad fork/join targets, etc.)."""


@dataclass
class Program:
    """A complete multi-threaded program."""

    threads: List[ThreadBody]
    name: str = "program"

    def __post_init__(self) -> None:
        self.validate()

    def body(self, name: str) -> ThreadBody:
        for thread in self.threads:
            if thread.name == name:
                return thread
        raise KeyError(name)

    def thread_names(self) -> List[str]:
        return [t.name for t in self.threads]

    def root_threads(self) -> List[str]:
        """Threads not forked by anyone — runnable from the start."""
        forked = self._forked_threads()
        return [t.name for t in self.threads if t.name not in forked]

    def _forked_threads(self) -> Set[str]:
        forked: Set[str] = set()
        for thread in self.threads:
            for stmt in thread.statements:
                if isinstance(stmt, Fork):
                    forked.add(stmt.thread)
        return forked

    def total_statements(self) -> int:
        return sum(len(t) for t in self.threads)

    def validate(self) -> None:
        """Static sanity checks (dynamic checks happen in the runtime)."""
        names = [t.name for t in self.threads]
        if len(set(names)) != len(names):
            raise ProgramError(f"duplicate thread names in {names}")
        known = set(names)
        fork_counts: Dict[str, int] = {}
        for thread in self.threads:
            depth = 0
            for stmt in thread.statements:
                if isinstance(stmt, (Fork, Join)):
                    if stmt.thread not in known:
                        raise ProgramError(
                            f"{thread.name} references unknown thread "
                            f"{stmt.thread}"
                        )
                    if stmt.thread == thread.name:
                        raise ProgramError(f"{thread.name} forks/joins itself")
                    if isinstance(stmt, Fork):
                        fork_counts[stmt.thread] = fork_counts.get(stmt.thread, 0) + 1
                elif isinstance(stmt, Begin):
                    depth += 1
                elif isinstance(stmt, End):
                    depth -= 1
                    if depth < 0:
                        raise ProgramError(
                            f"{thread.name} has an End with no matching Begin"
                        )
            if depth != 0:
                raise ProgramError(
                    f"{thread.name} leaves {depth} atomic block(s) open"
                )
        for target, times in fork_counts.items():
            if times > 1:
                raise ProgramError(f"thread {target} forked {times} times")
        if not self.root_threads():
            raise ProgramError("no root thread (fork cycle)")


def program_of(bodies: Dict[str, Sequence[StmtLike]], name: str = "program") -> Program:
    """Build a program from a ``{thread name: statements}`` mapping."""
    return Program(
        threads=[ThreadBody(tname, flatten(stmts)) for tname, stmts in bodies.items()],
        name=name,
    )
