"""Systematic and randomized schedule exploration.

Dynamic atomicity checkers only see the schedules that actually ran; the
related work the paper surveys (CTrigger [49], Penelope [58], CalFuzzer
[26], model checking [11, 55]) attacks the *interleaving explosion* by
searching the schedule space. This module provides both search modes on
our program model:

* :func:`enumerate_schedules` — exhaustive DFS over every scheduler
  choice of a (small) program, yielding each distinct trace once;
* :func:`explore` — run a checker over enumerated schedules and report
  how many violate atomicity, with a witness schedule;
* :func:`fuzz` — the CalFuzzer-style alternative: sample random
  schedules when the space is too large to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..api.session import check as check_trace
from ..trace.events import Event, Op
from ..trace.trace import Trace
from .program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    Read,
    Release,
    Write,
)
from .runtime import execute
from .scheduler import PCTScheduler, RandomScheduler, Scheduler


class _State:
    """A lightweight program-execution state for DFS exploration."""

    __slots__ = ("program", "pcs", "started", "lock_holder", "lock_depth")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.pcs: Dict[str, int] = {t.name: 0 for t in program.threads}
        roots = set(program.root_threads())
        self.started: Dict[str, bool] = {
            t.name: t.name in roots for t in program.threads
        }
        self.lock_holder: Dict[str, str] = {}
        self.lock_depth: Dict[str, int] = {}

    def clone(self) -> "_State":
        twin = _State.__new__(_State)
        twin.program = self.program
        twin.pcs = dict(self.pcs)
        twin.started = dict(self.started)
        twin.lock_holder = dict(self.lock_holder)
        twin.lock_depth = dict(self.lock_depth)
        return twin

    def _finished(self, name: str) -> bool:
        return self.pcs[name] >= len(self.program.body(name).statements)

    @property
    def done(self) -> bool:
        return all(self._finished(t.name) for t in self.program.threads)

    def runnable(self) -> List[str]:
        names = []
        for body in self.program.threads:
            name = body.name
            if not self.started[name] or self._finished(name):
                continue
            stmt = body.statements[self.pcs[name]]
            if isinstance(stmt, Acquire):
                holder = self.lock_holder.get(stmt.lock)
                if holder is not None and holder != name:
                    continue
            elif isinstance(stmt, Join):
                if not (self.started[stmt.thread] and self._finished(stmt.thread)):
                    continue
            names.append(name)
        return names

    def step(self, name: str) -> Event:
        """Execute one statement of ``name``; returns the logged event."""
        stmt = self.program.body(name).statements[self.pcs[name]]
        self.pcs[name] += 1
        if isinstance(stmt, Read):
            return Event(name, Op.READ, stmt.var)
        if isinstance(stmt, Write):
            return Event(name, Op.WRITE, stmt.var)
        if isinstance(stmt, Acquire):
            self.lock_holder[stmt.lock] = name
            self.lock_depth[stmt.lock] = self.lock_depth.get(stmt.lock, 0) + 1
            return Event(name, Op.ACQUIRE, stmt.lock)
        if isinstance(stmt, Release):
            depth = self.lock_depth.get(stmt.lock, 0) - 1
            self.lock_depth[stmt.lock] = depth
            if depth == 0:
                self.lock_holder.pop(stmt.lock, None)
            return Event(name, Op.RELEASE, stmt.lock)
        if isinstance(stmt, Fork):
            self.started[stmt.thread] = True
            return Event(name, Op.FORK, stmt.thread)
        if isinstance(stmt, Join):
            return Event(name, Op.JOIN, stmt.thread)
        if isinstance(stmt, Begin):
            return Event(name, Op.BEGIN, stmt.label)
        assert isinstance(stmt, End)
        return Event(name, Op.END, stmt.label)


def enumerate_schedules(
    program: Program, max_schedules: Optional[int] = None
) -> Iterator[Trace]:
    """Yield the trace of every maximal schedule of ``program`` (DFS).

    The number of schedules is exponential in the program size; cap it
    with ``max_schedules`` for anything but toy programs. Deadlocked
    schedules (no runnable thread before completion) are yielded as
    their partial traces — checkers handle prefixes fine.
    """
    produced = 0
    stack: List[tuple] = [(_State(program), [])]
    while stack:
        state, events = stack.pop()
        runnable = state.runnable()
        if not runnable:
            trace = Trace(name=f"{program.name}-schedule-{produced}")
            trace.extend(Event(e.thread, e.op, e.target) for e in events)
            yield trace
            produced += 1
            if max_schedules is not None and produced >= max_schedules:
                return
            continue
        # Reversed so DFS explores threads in declaration order first.
        for name in reversed(runnable):
            twin = state.clone() if len(runnable) > 1 else state
            event = twin.step(name)
            stack.append((twin, events + [event]))


@dataclass
class ExplorationResult:
    """Outcome of checking a schedule population.

    Attributes:
        schedules: Number of schedules checked.
        violating: Number of non-serializable schedules.
        witness: One violating trace (``None`` if all serializable).
        exhaustive: Whether the whole schedule space was covered.
    """

    schedules: int = 0
    violating: int = 0
    witness: Optional[Trace] = None
    exhaustive: bool = True

    @property
    def always_atomic(self) -> bool:
        """No explored schedule violates (a proof when ``exhaustive``)."""
        return self.violating == 0

    def __str__(self) -> str:
        kind = "all" if self.exhaustive else "sampled"
        return (
            f"{self.violating}/{self.schedules} {kind} schedules violate "
            "conflict serializability"
        )


def explore(
    program: Program,
    algorithm: str = "aerodrome",
    max_schedules: Optional[int] = 10_000,
) -> ExplorationResult:
    """Check every schedule of ``program`` (up to ``max_schedules``)."""
    result = ExplorationResult()
    for trace in enumerate_schedules(program, max_schedules=max_schedules):
        result.schedules += 1
        verdict = check_trace(trace, algorithm=algorithm)
        if not verdict.serializable:
            result.violating += 1
            if result.witness is None:
                result.witness = trace
    if max_schedules is not None and result.schedules >= max_schedules:
        result.exhaustive = False
    return result


def fuzz(
    program: Program,
    schedules: int = 100,
    algorithm: str = "aerodrome",
    seed: int = 0,
    strategy: str = "uniform",
    pct_depth: int = 3,
) -> ExplorationResult:
    """Sample random schedules instead of enumerating.

    Args:
        program: The program to fuzz.
        schedules: Number of sampled runs.
        algorithm: Checker for each run.
        seed: Base PRNG seed (run ``i`` uses ``seed + i``).
        strategy: ``"uniform"`` (CalFuzzer-style uniform scheduling) or
            ``"pct"`` (probabilistic concurrency testing with the steps
            bound set to the program length — better odds for bugs
            needing few ordering constraints).
        pct_depth: The PCT bug-depth parameter (``strategy="pct"``).
    """
    if strategy not in ("uniform", "pct"):
        raise ValueError(f"unknown strategy {strategy!r}")
    steps_bound = program.total_statements()

    def make_scheduler(run_seed: int) -> Scheduler:
        if strategy == "pct":
            return PCTScheduler(
                seed=run_seed, depth=pct_depth, max_steps=steps_bound
            )
        return RandomScheduler(seed=run_seed)

    result = ExplorationResult(exhaustive=False)
    for i in range(schedules):
        trace = execute(program, make_scheduler(seed + i))
        result.schedules += 1
        verdict = check_trace(trace, algorithm=algorithm)
        if not verdict.serializable:
            result.violating += 1
            if result.witness is None:
                result.witness = trace
    return result
