"""The trace zoo: a named corpus of small traces with known verdicts.

Every specimen is a hand-written trace exhibiting one interesting shape
— the paper's worked examples, the classic separations between
atomicity notions, and the regression cases our implementation work
surfaced. The zoo serves three masters:

* **tests** — ``tests/test_trace_zoo.py`` asserts every specimen's
  expected verdict against the oracle and every registered checker;
* **docs/examples** — the specimens are the vocabulary the examples and
  docs refer to (``zoo.get("paper-rho2")``);
* **the CLI** — ``python -m repro.cli zoo NAME -o NAME.std`` writes any
  specimen as a ``.std`` file to experiment with.

Each specimen records whether it is conflict serializable and (where
the exact checker can afford to decide it) whether it is *view*
serializable, so the zoo doubles as a map of the notion landscape:
``view-not-conflict`` is the blind-write separation, ``paper-rho2`` is
violating under both, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..trace.events import acquire, begin, end, fork, join, read, release, write
from ..trace.trace import Trace


@dataclass(frozen=True)
class Specimen:
    """One zoo entry.

    Attributes:
        name: Stable identifier (kebab-case).
        description: What shape the trace exhibits.
        build: Zero-argument factory returning a fresh :class:`Trace`.
        conflict_serializable: Ground-truth verdict (Definition 1).
        view_serializable: Ground truth for the weaker notion, or
            ``None`` where we do not assert it.
    """

    name: str
    description: str
    build: Callable[[], Trace]
    conflict_serializable: bool
    view_serializable: Optional[bool] = None

    def trace(self) -> Trace:
        """A fresh copy of the specimen's trace."""
        built = self.build()
        built.name = self.name
        return built


def _rho1() -> Trace:
    return Trace(
        [
            begin("t1"), write("t1", "x"),
            begin("t2"), read("t2", "x"), end("t2"),
            begin("t3"), write("t3", "z"), end("t3"),
            read("t1", "z"), end("t1"),
        ]
    )


def _rho2() -> Trace:
    return Trace(
        [
            begin("t1"), begin("t2"),
            write("t1", "x"), read("t2", "x"),
            write("t2", "y"), read("t1", "y"),
            end("t2"), end("t1"),
        ]
    )


def _rho3() -> Trace:
    return Trace(
        [
            begin("t1"), begin("t2"),
            write("t1", "x"), write("t2", "y"),
            read("t1", "y"), read("t2", "x"),
            end("t1"), end("t2"),
        ]
    )


def _rho4() -> Trace:
    return Trace(
        [
            begin("t1"), write("t1", "x"),
            begin("t2"), write("t2", "y"), read("t2", "x"), end("t2"),
            begin("t3"), read("t3", "y"), write("t3", "z"), end("t3"),
            read("t1", "z"), end("t1"),
        ]
    )


def _lock_cycle() -> Trace:
    return Trace(
        [
            begin("t1"),
            acquire("t1", "l"), write("t1", "x"), release("t1", "l"),
            begin("t2"),
            acquire("t2", "l"), read("t2", "x"), release("t2", "l"),
            end("t2"),
            acquire("t1", "l"), release("t1", "l"),
            end("t1"),
        ]
    )


def _blind_write() -> Trace:
    return Trace(
        [
            begin("t1"), read("t1", "x"),
            begin("t2"), write("t2", "x"), end("t2"),
            write("t1", "x"), end("t1"),
            begin("t3"), write("t3", "x"), end("t3"),
        ]
    )


def _fork_join_handoff() -> Trace:
    return Trace(
        [
            begin("t1"), write("t1", "x"), end("t1"),
            fork("t1", "t2"),
            begin("t2"), read("t2", "x"), write("t2", "x"), end("t2"),
            join("t1", "t2"),
            begin("t1"), read("t1", "x"), end("t1"),
        ]
    )


def _join_cycle() -> Trace:
    """The parent joins a child whose work depends on the parent's open
    transaction — the cycle closes at the join event."""
    return Trace(
        [
            fork("t1", "t2"),
            begin("t1"),
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            join("t1", "t2"),
            end("t1"),
        ]
    )


def _nested_flattened() -> Trace:
    """Nesting is flattened (§4.1.4): inner begin/end do not split the
    outer transaction, so the outer cycle is still detected."""
    return Trace(
        [
            begin("t1"), begin("t1"), write("t1", "x"), end("t1"),
            begin("t2"), read("t2", "x"), write("t2", "y"), end("t2"),
            read("t1", "y"), end("t1"),
        ]
    )


def _three_party_cycle() -> Trace:
    """T1 -> T2 -> T3 -> T1 with every hop through a different variable."""
    return Trace(
        [
            begin("t1"), begin("t2"), begin("t3"),
            write("t1", "a"), read("t2", "a"),
            write("t2", "b"), read("t3", "b"),
            write("t3", "c"), read("t1", "c"),
            end("t1"), end("t2"), end("t3"),
        ]
    )


def _unary_only() -> Trace:
    """No atomic blocks at all: trivially serializable (every
    transaction is unary)."""
    return Trace(
        [
            write("t1", "x"), read("t2", "x"),
            write("t2", "x"), read("t1", "x"),
        ]
    )


def _unary_mediator() -> Trace:
    """A cycle between two blocks mediated by a unary access in a third
    thread — unary transactions participate in cycles even though they
    never *report* (§4.1.4)."""
    return Trace(
        [
            begin("t1"), write("t1", "x"),
            read("t3", "x"),       # unary: T1 -> u
            write("t3", "y"),      # unary: u' (same unary? no - two events)
            begin("t2"), read("t2", "y"), write("t2", "z"), end("t2"),
            read("t1", "z"), end("t1"),
        ]
    )


def _read_only_sharing() -> Trace:
    return Trace(
        [
            write("t1", "x"),
            begin("t1"), read("t1", "x"), end("t1"),
            begin("t2"), read("t2", "x"), end("t2"),
            begin("t1"), read("t1", "x"), end("t1"),
        ]
    )


def _locked_counter() -> Trace:
    """Two increments fully protected by one lock: serializable."""
    events = []
    for thread in ("t1", "t2", "t1", "t2"):
        events.extend(
            [
                begin(thread),
                acquire(thread, "l"),
                read(thread, "c"),
                write(thread, "c"),
                release(thread, "l"),
                end(thread),
            ]
        )
    return Trace(events)


def _unlocked_counter() -> Trace:
    """The TOCTOU classic: check outside, write inside interleaved."""
    return Trace(
        [
            begin("t1"), read("t1", "c"),
            begin("t2"), read("t2", "c"), write("t2", "c"), end("t2"),
            write("t1", "c"), end("t1"),
        ]
    )


def _reduction_false_alarm() -> Trace:
    """Serializable under conflict serializability, yet flagged by the
    Lipton-reduction baseline: the child's write is fork-ordered (no
    real race), but the lockset analysis marks it racy, turning it into
    a post-commit non-mover inside the child's block."""
    return Trace(
        [
            write("t1", "x"),
            fork("t1", "t2"),
            begin("t2"),
            acquire("t2", "l"),
            release("t2", "l"),
            write("t2", "x"),
            end("t2"),
            join("t1", "t2"),
        ]
    )


def _write_skew() -> Trace:
    """The write-skew anomaly: both transactions read {x, y}, then each
    writes a different one — a symmetric two-edge cycle."""
    return Trace(
        [
            begin("t1"), read("t1", "x"), read("t1", "y"),
            begin("t2"), read("t2", "x"), read("t2", "y"),
            write("t2", "y"), end("t2"),
            write("t1", "x"), end("t1"),
        ]
    )


def _dependency_chain() -> Trace:
    """T1 -> T2 -> ... -> T5 in a line: heavily ordered yet serializable
    (the topological witness is the chain itself)."""
    events = []
    events += [begin("t1"), write("t1", "v0"), write("t1", "h0"), end("t1")]
    for i in range(2, 6):
        thread = f"t{i}"
        events += [
            begin(thread),
            read(thread, f"h{i - 2}"),
            write(thread, f"h{i - 1}"),
            end(thread),
        ]
    return Trace(events)


def _lock_handoff_chain() -> Trace:
    """A baton passed through three locks across three threads — every
    cross-thread edge is a rel->acq edge; serializable."""
    events = []
    events += [
        begin("t1"), acquire("t1", "l1"), write("t1", "baton1"),
        release("t1", "l1"), end("t1"),
        begin("t2"), acquire("t2", "l1"), read("t2", "baton1"),
        release("t2", "l1"), acquire("t2", "l2"), write("t2", "baton2"),
        release("t2", "l2"), end("t2"),
        begin("t3"), acquire("t3", "l2"), read("t3", "baton2"),
        release("t3", "l2"), end("t3"),
    ]
    return Trace(events)


def _deep_nesting() -> Trace:
    """Four levels of nested begin/end around the ρ2 core: only the
    outermost pair matters (§4.1.4), so the violation survives."""
    return Trace(
        [
            begin("t1"), begin("t1"), begin("t1"), begin("t1"),
            begin("t2"),
            write("t1", "x"), read("t2", "x"),
            write("t2", "y"),
            end("t1"), end("t1"), end("t1"),
            read("t1", "y"),
            end("t2"), end("t1"),
        ]
    )


def _long_cycle_with_locks() -> Trace:
    """A four-transaction cycle where alternate hops go through a
    variable and a lock — exercises mixed-edge cycles."""
    return Trace(
        [
            begin("t1"), write("t1", "a"),
            begin("t2"), read("t2", "a"),
            acquire("t2", "l"), release("t2", "l"), end("t2"),
            begin("t3"), acquire("t3", "l"), write("t3", "b"),
            release("t3", "l"), end("t3"),
            begin("t4"), read("t4", "b"), write("t4", "c"), end("t4"),
            read("t1", "c"), end("t1"),
        ]
    )


_SPECIMENS: List[Specimen] = [
    Specimen(
        "paper-rho1",
        "Figure 1: three transactions, serial order T3 T1 T2 exists",
        _rho1, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "paper-rho2",
        "Figure 2: mutual CHB ordering, violation at the second read",
        _rho2, conflict_serializable=False, view_serializable=False,
    ),
    Specimen(
        "paper-rho3",
        "Figure 3: violation with no CHB path back into one transaction",
        _rho3, conflict_serializable=False, view_serializable=False,
    ),
    Specimen(
        "paper-rho4",
        "Figure 4: cycle through a completed mediating transaction",
        _rho4, conflict_serializable=False, view_serializable=False,
    ),
    Specimen(
        "lock-cycle",
        "violation closed only by a release->acquire edge",
        _lock_cycle, conflict_serializable=False,
    ),
    Specimen(
        "view-not-conflict",
        "blind writes: view serializable yet conflict violating",
        _blind_write, conflict_serializable=False, view_serializable=True,
    ),
    Specimen(
        "fork-join-handoff",
        "ownership handoff via fork/join: serializable",
        _fork_join_handoff, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "join-cycle",
        "cycle closed at a join event",
        _join_cycle, conflict_serializable=False,
    ),
    Specimen(
        "nested-flattened",
        "inner begin/end pairs do not hide the outer cycle",
        _nested_flattened, conflict_serializable=False,
    ),
    Specimen(
        "three-party-cycle",
        "T1 -> T2 -> T3 -> T1, one variable per hop",
        _three_party_cycle, conflict_serializable=False,
        view_serializable=False,
    ),
    Specimen(
        "unary-only",
        "no atomic blocks: trivially serializable",
        _unary_only, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "unary-mediator",
        "unary accesses mediate a cycle between two blocks",
        _unary_mediator, conflict_serializable=False,
    ),
    Specimen(
        "read-only-sharing",
        "shared reads only: serializable",
        _read_only_sharing, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "locked-counter",
        "lock-protected read-modify-write: serializable",
        _locked_counter, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "unlocked-counter",
        "TOCTOU interleaving of two unprotected increments",
        _unlocked_counter, conflict_serializable=False,
        view_serializable=False,
    ),
    Specimen(
        "dependency-chain",
        "T1 -> ... -> T5 hand-off line: ordered but serializable",
        _dependency_chain, conflict_serializable=True, view_serializable=True,
    ),
    Specimen(
        "lock-handoff-chain",
        "baton through three locks: rel->acq edges only, serializable",
        _lock_handoff_chain, conflict_serializable=True,
    ),
    Specimen(
        "deep-nesting",
        "four nesting levels around the rho2 core: still detected",
        _deep_nesting, conflict_serializable=False,
    ),
    Specimen(
        "mixed-edge-cycle",
        "four-party cycle alternating variable and lock edges",
        _long_cycle_with_locks, conflict_serializable=False,
    ),
    Specimen(
        "reduction-false-alarm",
        "serializable, but the Atomizer baseline flags it",
        _reduction_false_alarm, conflict_serializable=True,
    ),
    Specimen(
        "write-skew",
        "both read {x,y}, each writes one: symmetric two-edge cycle",
        _write_skew, conflict_serializable=False, view_serializable=False,
    ),
]

_BY_NAME: Dict[str, Specimen] = {s.name: s for s in _SPECIMENS}


def names() -> List[str]:
    """All specimen names, in curated order."""
    return [s.name for s in _SPECIMENS]


def get(name: str) -> Specimen:
    """Look up a specimen by name.

    Raises:
        KeyError: With the list of valid names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown specimen {name!r}; choose from {names()}"
        ) from None


def all_specimens() -> List[Specimen]:
    """Every specimen (fresh list; specimens themselves are frozen)."""
    return _SPECIMENS[:]
