"""Seeded random well-formed trace generation.

The property-based tests compare AeroDrome (basic and optimized),
Velodrome and the exact oracle on thousands of random traces; this module
produces those traces. The generator maintains per-thread lock and
nesting state so every emitted trace is well-formed by construction, and
it closes every transaction and releases every lock before finishing —
the regime in which Theorem 3 makes AeroDrome's verdict coincide with
plain conflict serializability (Definition 1), i.e. with the oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..trace.events import Event, Op
from ..trace.trace import Trace


@dataclass(frozen=True)
class RandomTraceConfig:
    """Knobs for :func:`random_trace`.

    Attributes:
        n_threads: Number of threads (all alive from the start unless
            ``with_forks``).
        n_vars: Number of shared memory locations.
        n_locks: Number of locks.
        length: Approximate number of randomly chosen events; the closing
            epilogue (releases/ends/joins) comes on top.
        p_begin: Probability weight of opening an atomic block.
        p_end: Probability weight of closing the innermost open block.
        p_lock: Probability weight of lock operations.
        max_nesting: Maximum begin/end nesting depth.
        with_forks: If True, thread 0 forks all others at the start and
            joins them at the end, covering fork/join handlers.
    """

    n_threads: int = 3
    n_vars: int = 4
    n_locks: int = 2
    length: int = 40
    p_begin: float = 0.15
    p_end: float = 0.15
    p_lock: float = 0.2
    max_nesting: int = 2
    with_forks: bool = False


class _ThreadGenState:
    __slots__ = ("name", "held", "depth")

    def __init__(self, name: str) -> None:
        self.name = name
        self.held: List[str] = []  # LIFO of held locks
        self.depth = 0


def random_trace(
    seed: int,
    config: Optional[RandomTraceConfig] = None,
    name: Optional[str] = None,
) -> Trace:
    """A random well-formed trace, fully determined by ``seed``/``config``.

    All transactions are completed and all locks released by the end of
    the trace; if ``config.with_forks``, thread 0 forks every other
    thread before they run and joins them after they stop.
    """
    cfg = config or RandomTraceConfig()
    rng = random.Random(seed)
    trace = Trace(name=name or f"random-{seed}")
    threads = [_ThreadGenState(f"t{i}") for i in range(cfg.n_threads)]
    root, workers = threads[0], threads[1:]

    if cfg.with_forks:
        for worker in workers:
            trace.append(Event(root.name, Op.FORK, worker.name))

    variables = [f"x{i}" for i in range(cfg.n_vars)]
    locks = [f"l{i}" for i in range(cfg.n_locks)]
    free_locks = set(locks)

    for _ in range(cfg.length):
        state = threads[rng.randrange(len(threads))]
        choice = rng.random()
        if choice < cfg.p_begin and state.depth < cfg.max_nesting:
            state.depth += 1
            trace.append(Event(state.name, Op.BEGIN))
        elif choice < cfg.p_begin + cfg.p_end and state.depth > 0:
            state.depth -= 1
            trace.append(Event(state.name, Op.END))
        elif choice < cfg.p_begin + cfg.p_end + cfg.p_lock and locks:
            # Prefer releasing when holding something, else acquire a
            # free lock; never block (this is a generator, not a runtime).
            if state.held and (not free_locks or rng.random() < 0.5):
                lock = state.held.pop()
                free_locks.add(lock)
                trace.append(Event(state.name, Op.RELEASE, lock))
            elif free_locks:
                lock = rng.choice(sorted(free_locks))
                free_locks.discard(lock)
                state.held.append(lock)
                trace.append(Event(state.name, Op.ACQUIRE, lock))
            else:
                trace.append(
                    Event(state.name, Op.READ, rng.choice(variables))
                )
        else:
            op = Op.READ if rng.random() < 0.6 else Op.WRITE
            trace.append(Event(state.name, op, rng.choice(variables)))

    # Epilogue: close everything so that every transaction is complete
    # (Theorem 3 regime) and every lock is released.
    for state in threads:
        while state.held:
            trace.append(Event(state.name, Op.RELEASE, state.held.pop()))
        while state.depth > 0:
            state.depth -= 1
            trace.append(Event(state.name, Op.END))
    if cfg.with_forks:
        for worker in workers:
            trace.append(Event(root.name, Op.JOIN, worker.name))
    return trace
