"""Workload generators: concurrency idioms and benchmark-row analogs."""

from .benchmarks import (
    ALL_CASES,
    CASES_BY_NAME,
    TABLE1,
    TABLE2,
    BenchmarkCase,
    PaperRow,
    coordinator_trace,
    get_case,
    independent_trace,
    unary_trace,
    whole_thread_trace,
)
from .patterns import (
    bank_transfer,
    dining_philosophers,
    double_checked_flag,
    fork_join_pipeline,
    locked_counter,
    producer_consumer,
    read_shared_write_private,
    unprotected_counter,
)

__all__ = [
    "BenchmarkCase",
    "PaperRow",
    "TABLE1",
    "TABLE2",
    "ALL_CASES",
    "CASES_BY_NAME",
    "get_case",
    "coordinator_trace",
    "independent_trace",
    "unary_trace",
    "whole_thread_trace",
    "locked_counter",
    "unprotected_counter",
    "bank_transfer",
    "producer_consumer",
    "dining_philosophers",
    "fork_join_pipeline",
    "read_shared_write_private",
    "double_checked_flag",
]
