"""Reusable concurrency idioms as program builders.

Each function returns a :class:`~repro.sim.program.Program` embodying a
well-known multi-threaded pattern — the kinds of code the paper's intro
motivates (shared counters, bank accounts, producer/consumer queues,
dining philosophers). Executing them under a scheduler yields traces
whose serializability verdict is known by construction, which the tests
assert against every checker.
"""

from __future__ import annotations

from typing import List

from ..program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    Read,
    Release,
    Stmt,
    ThreadBody,
    Write,
    atomic,
    locked,
)


def locked_counter(
    n_threads: int = 3, increments: int = 4, lock: str = "L", counter: str = "c"
) -> Program:
    """Atomic increments of a shared counter guarded by one lock.

    Every atomic block takes the lock around the read-modify-write, so
    all executions are conflict serializable.
    """
    threads = [
        ThreadBody(
            f"t{i}",
            [
                stmt
                for _ in range(increments)
                for stmt in atomic(
                    locked(lock, Read(counter), Write(counter)),
                    label="increment",
                )
            ],
        )
        for i in range(n_threads)
    ]
    return Program(threads, name="locked_counter")


def unprotected_counter(
    n_threads: int = 2, increments: int = 3, counter: str = "c"
) -> Program:
    """Atomic blocks doing unlocked read-modify-write on a shared counter.

    Interleaving two read-modify-write blocks violates conflict
    serializability (the classic lost-update bug); fine-grained schedules
    expose it, coarse (serial) schedules do not.
    """
    threads = [
        ThreadBody(
            f"t{i}",
            [
                stmt
                for _ in range(increments)
                for stmt in atomic(Read(counter), Write(counter), label="increment")
            ],
        )
        for i in range(n_threads)
    ]
    return Program(threads, name="unprotected_counter")


def bank_transfer(
    n_accounts: int = 3, transfers_per_thread: int = 2, guarded: bool = True
) -> Program:
    """Two tellers transferring between accounts.

    With ``guarded=True`` each transfer holds a global ledger lock —
    serializable. With ``guarded=False`` the balance reads and writes
    interleave — an atomicity violation under fine-grained scheduling.
    """
    accounts = [f"acct{i}" for i in range(n_accounts)]

    def transfer(src: str, dst: str) -> List[Stmt]:
        body: List[Stmt] = [Read(src), Write(src), Read(dst), Write(dst)]
        if guarded:
            body = locked("ledger", body)
        return atomic(body, label="transfer")

    threads = []
    for i in range(2):
        statements: List[Stmt] = []
        for k in range(transfers_per_thread):
            src = accounts[(i + k) % n_accounts]
            dst = accounts[(i + k + 1) % n_accounts]
            statements.extend(transfer(src, dst))
        threads.append(ThreadBody(f"teller{i}", statements))
    return Program(threads, name=f"bank_transfer_{'locked' if guarded else 'racy'}")


def producer_consumer(
    items: int = 4, guarded: bool = True, queue_lock: str = "qlock"
) -> Program:
    """A one-slot queue: producer writes data+flag, consumer reads them.

    The guarded variant protects (data, flag) with a lock; the unguarded
    variant lets the consumer observe data and flag from different
    productions, which is an atomicity violation.
    """

    def produce(i: int) -> List[Stmt]:
        body: List[Stmt] = [Write("data"), Write("flag")]
        if guarded:
            body = locked(queue_lock, body)
        return atomic(body, label="produce")

    def consume(i: int) -> List[Stmt]:
        body: List[Stmt] = [Read("flag"), Read("data")]
        if guarded:
            body = locked(queue_lock, body)
        return atomic(body, label="consume")

    producer = ThreadBody(
        "producer", [stmt for i in range(items) for stmt in produce(i)]
    )
    consumer = ThreadBody(
        "consumer", [stmt for i in range(items) for stmt in consume(i)]
    )
    return Program(
        [producer, consumer],
        name=f"producer_consumer_{'locked' if guarded else 'racy'}",
    )


def dining_philosophers(n: int = 5, bites: int = 1) -> Program:
    """The ``philo`` microbenchmark shape: think, grab forks, eat.

    Forks are ordered by index (deadlock-free) and eating is an atomic
    block covering both fork locks — conflict serializable.
    """
    threads = []
    for i in range(n):
        left, right = f"fork{i}", f"fork{(i + 1) % n}"
        first, second = (left, right) if left < right else (right, left)
        statements: List[Stmt] = []
        for _ in range(bites):
            statements.extend(
                atomic(
                    locked(first, locked(second, Read("table"), Write(f"plate{i}"))),
                    label="eat",
                )
            )
        threads.append(ThreadBody(f"philosopher{i}", statements))
    return Program(threads, name="dining_philosophers")


def fork_join_pipeline(n_workers: int = 3, work_items: int = 2) -> Program:
    """A main thread forks workers, each fills a private buffer, main joins
    and aggregates — serializable, and exercises fork/join handlers."""
    main = ThreadBody("main", [])
    workers = []
    for i in range(n_workers):
        worker = ThreadBody(
            f"worker{i}",
            [
                stmt
                for k in range(work_items)
                for stmt in atomic(
                    Read(f"input{i}"), Write(f"buffer{i}"), label="work"
                )
            ],
        )
        workers.append(worker)
        main.statements.append(Fork(f"worker{i}"))
    for i in range(n_workers):
        main.statements.append(Join(f"worker{i}"))
    main.statements.extend(
        atomic([Read(f"buffer{i}") for i in range(n_workers)], label="aggregate")
    )
    return Program([main, *workers], name="fork_join_pipeline")


def read_shared_write_private(n_threads: int = 4, rounds: int = 3) -> Program:
    """Threads read a shared config and write private state — serializable
    regardless of schedule (no write-write or write-read races)."""
    threads = [
        ThreadBody(
            f"t{i}",
            [
                stmt
                for _ in range(rounds)
                for stmt in atomic(Read("config"), Write(f"private{i}"), label="round")
            ],
        )
        for i in range(n_threads)
    ]
    return Program(threads, name="read_shared_write_private")


def reader_writer(
    n_readers: int = 3, rounds: int = 2, guarded: bool = True
) -> Program:
    """Readers scan a record set a writer updates.

    The guarded variant emulates a reader–writer lock with a single
    mutex around each critical section (our model has no shared-mode
    locks, and exclusive locking over-approximates one safely):
    serializable. The unguarded variant lets a reader observe a
    half-applied update *and* be observed by the next update —
    a violation under fine interleavings.
    """
    fields = ["rec_a", "rec_b"]

    def update() -> List[Stmt]:
        body: List[Stmt] = [Write(f) for f in fields]
        body.append(Read("watermark"))
        if guarded:
            body = locked("rw", body)
        return atomic(body, label="update")

    def scan(i: int) -> List[Stmt]:
        body: List[Stmt] = [Read(f) for f in fields]
        body.append(Write("watermark"))
        if guarded:
            body = locked("rw", body)
        return atomic(body, label="scan")

    writer = ThreadBody(
        "writer", [stmt for _ in range(rounds) for stmt in update()]
    )
    readers = [
        ThreadBody(
            f"reader{i}", [stmt for _ in range(rounds) for stmt in scan(i)]
        )
        for i in range(n_readers)
    ]
    return Program(
        [writer, *readers],
        name=f"reader_writer_{'locked' if guarded else 'racy'}",
    )


def barrier_phases(n_threads: int = 3, phases: int = 2) -> Program:
    """Bulk-synchronous phases separated by a lock-simulated barrier.

    Each thread works on private data within a phase, then updates the
    shared barrier count under a lock. All cross-thread conflicts are
    lock-ordered: serializable.
    """
    threads = []
    for i in range(n_threads):
        statements: List[Stmt] = []
        for p in range(phases):
            statements.extend(
                atomic(
                    Read(f"work{i}_{p}"),
                    Write(f"work{i}_{p}"),
                    locked("barrier", Read("arrived"), Write("arrived")),
                    label="phase",
                )
            )
        threads.append(ThreadBody(f"t{i}", statements))
    return Program(threads, name="barrier_phases")


def work_stealing(n_workers: int = 2, tasks: int = 3) -> Program:
    """A deque owner pushes tasks; thieves steal from the other end.

    Push and steal both read-modify-write the deque bounds without a
    common lock (the classic Chase–Lev optimism), so blocks interleave
    into cycles under fine schedules — an atomicity violation, which is
    faithful: such deques are *linearizable but not atomic-block
    serializable* at this granularity.
    """
    owner = ThreadBody("owner", [])
    for k in range(tasks):
        owner.extend(
            atomic(Read("bottom"), Write(f"task{k}"), Write("bottom"),
                   label="push")
        )
    thieves = []
    for i in range(n_workers):
        thief = ThreadBody(f"thief{i}", [])
        for k in range(tasks // n_workers + 1):
            thief.extend(
                atomic(Read("top"), Read("bottom"), Write("top"),
                       label="steal")
            )
        thieves.append(thief)
    return Program([owner, *thieves], name="work_stealing")


def lazy_initialization(n_threads: int = 2, guarded: bool = True) -> Program:
    """Check-then-initialize of a shared singleton.

    Guarded: the whole check+init is under one lock — serializable.
    Unguarded: two threads can interleave check and init (the broken
    double-checked-locking shape) — a violation.
    """

    def init_once() -> List[Stmt]:
        body: List[Stmt] = [Read("instance"), Write("instance")]
        if guarded:
            body = locked("init", body)
        return atomic(body, label="get_instance")

    threads = [
        ThreadBody(f"t{i}", init_once() + [Begin("use"), Read("instance"), End("use")])
        for i in range(n_threads)
    ]
    return Program(
        threads, name=f"lazy_init_{'locked' if guarded else 'racy'}"
    )


def pipeline_stages(stages: int = 3, items: int = 2) -> Program:
    """A hand-off pipeline: stage k reads slot k-1 and writes slot k,
    with each hand-off protected by the slot's lock — serializable."""
    threads = []
    for s in range(stages):
        statements: List[Stmt] = []
        for _ in range(items):
            body: List[Stmt] = []
            if s > 0:
                body.extend(locked(f"slot{s - 1}", Read(f"buf{s - 1}")))
            body.extend(locked(f"slot{s}", Write(f"buf{s}")))
            statements.extend(atomic(body, label=f"stage{s}"))
        threads.append(ThreadBody(f"stage{s}", statements))
    return Program(threads, name="pipeline_stages")


def map_reduce(n_mappers: int = 3, guarded: bool = True) -> Program:
    """Mappers fold into a shared accumulator, a reducer reads it.

    Guarded: every fold takes the accumulator lock — serializable.
    Unguarded: folds interleave read-modify-write — violation.
    """
    main = ThreadBody("main", [])
    mappers = []
    for i in range(n_mappers):
        body: List[Stmt] = [Read("acc"), Write("acc")]
        if guarded:
            body = locked("acc_lock", body)
        mapper = ThreadBody(
            f"mapper{i}",
            atomic(Read(f"chunk{i}"), body, label="fold"),
        )
        mappers.append(mapper)
        main.extend(Fork(f"mapper{i}"))
    for i in range(n_mappers):
        main.extend(Join(f"mapper{i}"))
    main.extend(atomic(Read("acc"), Write("result"), label="reduce"))
    return Program(
        [main, *mappers], name=f"map_reduce_{'locked' if guarded else 'racy'}"
    )


def double_checked_flag(rounds: int = 2) -> Program:
    """The check-then-act idiom: test a flag, then act on shared state in
    a separate atomic block from the one that set it.

    t0 publishes (state, flag) in one atomic block per round; t1 checks
    the flag in one block and consumes state in another while writing
    back its progress marker that t0 reads — a cross-thread cycle under
    fine interleavings.
    """
    t0 = ThreadBody("t0", [])
    t1 = ThreadBody("t1", [])
    for _ in range(rounds):
        t0.extend(
            atomic(Write("state"), Write("flag"), Read("progress"), label="publish")
        )
        t1.extend(
            atomic(Read("flag"), Read("state"), Write("progress"), label="consume")
        )
    return Program([t0, t1], name="double_checked_flag")
