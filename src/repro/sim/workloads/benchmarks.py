"""Scaled synthetic analogs of every benchmark row in Tables 1 and 2.

The paper evaluates AeroDrome vs. Velodrome on traces logged from Java
programs (DaCapo, Java Grande, microbenchmarks). We cannot run a JVM, so
each row gets a *synthetic analog*: a seeded generator producing a trace
whose shape matches what determines the relative performance of the two
algorithms —

* number of threads / locks / variables (scaled),
* how many transactions accumulate before a violation (late vs. early),
* whether transactions keep incoming ⋖Txn edges (which defeats
  Velodrome's garbage collection and lets its graph grow), and
* whether the trace is serializable at all.

Four trace shapes cover all 21 rows:

``coordinator``
    A long-lived coordinator transaction broadcasts a value that many
    small reader transactions consume, while separate producer threads
    publish results the coordinator polls. Every reader transaction hangs
    off the open coordinator transaction, so the transaction graph grows
    without bound and every coordinator poll triggers a graph-wide cycle
    check — the regime where Table 1 shows order-of-magnitude AeroDrome
    wins (avrora, elevator, lusearch, moldyn, montecarlo, raytracer,
    sunflow).

``independent``
    Threads run many small transactions on private data with occasional
    lock-protected sharing. Completed transactions lose their incoming
    edges and Velodrome's GC keeps the graph tiny, so the two algorithms
    are at parity (hedc, luindex, pmd, sor, xalan — speed-ups 0.7–1.2 in
    Table 1).

``unary``
    Almost all events sit outside atomic blocks (tsp has 312M events but
    just 9 transactions).

``whole-thread``
    The naive specification of Table 2: each thread is one giant atomic
    block and the violation (if any) surfaces within the first ~2% of
    the trace, so both algorithms stop early and run at parity.

Violations are planted as the paper's ρ2 pattern (Figure 2): two
transactions exchanging two variables in a crossed order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...trace.events import Event, Op
from ...trace.trace import Trace


@dataclass(frozen=True)
class PaperRow:
    """The numbers the paper reports for one benchmark (for EXPERIMENTS.md)."""

    events: str
    threads: int
    locks: str
    variables: str
    transactions: str
    atomic: bool  # True = ✓ (serializable), False = ✗
    velodrome: str  # seconds or "TO"
    aerodrome: str
    speedup: str


@dataclass(frozen=True)
class BenchmarkCase:
    """One row of Table 1 or Table 2, scaled for pure-Python analysis.

    Attributes:
        name: Paper's benchmark name.
        table: 1 (DoubleChecker specs) or 2 (naive specs).
        style: Trace shape — ``coordinator``/``independent``/``unary``/
            ``whole-thread``.
        events: Scaled target trace length.
        threads: Thread count (matches the paper's column 3).
        locks: Lock-pool size.
        variables: Private-variable pool size per thread.
        violation_at: Fraction of the trace where the ρ2 cycle is
            planted, or ``None`` for serializable rows.
        expect: ``"aerodrome"`` when the paper shows a large AeroDrome
            win, ``"parity"`` when the two algorithms are comparable.
        paper: The paper's reported row.
    """

    name: str
    table: int
    style: str
    events: int
    threads: int
    locks: int
    variables: int
    violation_at: Optional[float]
    expect: str
    paper: PaperRow

    def generate(self, seed: int = 0, scale: float = 1.0) -> Trace:
        """Produce this row's trace (deterministic in ``seed``/``scale``)."""
        events = max(200, int(self.events * scale))
        if self.style == "coordinator":
            return coordinator_trace(
                name=self.name,
                events=events,
                threads=self.threads,
                locks=self.locks,
                private_vars=self.variables,
                violation_at=self.violation_at,
                seed=seed,
            )
        if self.style == "independent":
            return independent_trace(
                name=self.name,
                events=events,
                threads=self.threads,
                locks=self.locks,
                private_vars=self.variables,
                violation_at=self.violation_at,
                seed=seed,
            )
        if self.style == "unary":
            return unary_trace(
                name=self.name,
                events=events,
                threads=self.threads,
                locks=self.locks,
                private_vars=self.variables,
                violation_at=self.violation_at,
                seed=seed,
            )
        if self.style == "whole-thread":
            return whole_thread_trace(
                name=self.name,
                events=events,
                threads=self.threads,
                locks=self.locks,
                private_vars=self.variables,
                violation_at=self.violation_at,
                seed=seed,
            )
        raise ValueError(f"unknown style {self.style!r}")


# ---------------------------------------------------------------------------
# Trace shapes
# ---------------------------------------------------------------------------


def _plant_rho2(
    trace: Trace, thread_a: str, thread_b: str, var_a: str, var_b: str
) -> None:
    """Append the paper's ρ2 pattern: a genuine 2-transaction cycle."""
    trace.append(Event(thread_a, Op.BEGIN))
    trace.append(Event(thread_b, Op.BEGIN))
    trace.append(Event(thread_a, Op.WRITE, var_a))
    trace.append(Event(thread_b, Op.READ, var_a))
    trace.append(Event(thread_b, Op.WRITE, var_b))
    trace.append(Event(thread_a, Op.READ, var_b))
    trace.append(Event(thread_b, Op.END))
    trace.append(Event(thread_a, Op.END))


def coordinator_trace(
    name: str,
    events: int,
    threads: int,
    locks: int,
    private_vars: int,
    violation_at: Optional[float],
    seed: int = 0,
    poll_period: int = 5,
    reader_txn_work: int = 2,
    work_probability: float = 0.2,
) -> Trace:
    """The coordinator/broadcast shape (large AeroDrome wins).

    Thread layout: ``coord`` holds one transaction open for the whole
    trace and polls producer results; ``pinner`` holds a second long
    transaction whose broadcast pins producer transactions in the graph;
    the remaining threads split into readers (consume the coordinator's
    broadcast) and producers (publish fresh result variables).
    """
    if threads < 4:
        raise ValueError("coordinator shape needs >= 4 threads")
    rng = random.Random(seed)
    trace = Trace(name=name)
    coord, pinner = "coord", "pinner"
    others = [f"w{i}" for i in range(threads - 2)]
    readers = others[: max(1, len(others) * 2 // 3)]
    producers = others[len(readers):] or [others[-1]]

    trace.append(Event(coord, Op.BEGIN))
    trace.append(Event(coord, Op.WRITE, "g"))
    trace.append(Event(pinner, Op.BEGIN))
    trace.append(Event(pinner, Op.WRITE, "g2"))

    produced: List[str] = []  # result vars written, not yet polled
    next_result = 0
    polled = 0
    violation_event: Optional[int] = (
        int(events * violation_at) if violation_at is not None else None
    )
    planted = False
    lock_names = [f"l{i}" for i in range(max(1, locks))]

    while len(trace) < events:
        if violation_event is not None and not planted and len(trace) >= violation_event:
            # A reader transaction that consumed the broadcast publishes
            # a value the coordinator then reads: a genuine cycle through
            # the still-open coordinator transaction.
            reader = readers[0]
            trace.append(Event(reader, Op.BEGIN))
            trace.append(Event(reader, Op.READ, "g"))
            trace.append(Event(reader, Op.WRITE, "viol"))
            trace.append(Event(reader, Op.END))
            trace.append(Event(coord, Op.READ, "viol"))
            planted = True
            continue
        if produced and len(trace) % poll_period == 0:
            # Coordinator polls the oldest unread result (each result
            # variable is read at most once, keeping the trace
            # serializable until the planted cycle).
            trace.append(Event(coord, Op.READ, produced.pop(0)))
            polled += 1
            continue
        if rng.random() < 0.35:
            producer = producers[rng.randrange(len(producers))]
            result = f"p{next_result}"
            next_result += 1
            trace.append(Event(producer, Op.BEGIN))
            trace.append(Event(producer, Op.READ, "g2"))
            trace.append(Event(producer, Op.WRITE, result))
            trace.append(Event(producer, Op.END))
            produced.append(result)
        else:
            # Reader transactions are deliberately tiny: the paper's
            # Table 1 rows accumulate hundreds of thousands of small
            # transactions, which is what makes Velodrome's graph grow.
            reader = readers[rng.randrange(len(readers))]
            trace.append(Event(reader, Op.BEGIN))
            trace.append(Event(reader, Op.READ, "g"))
            if rng.random() < work_probability:
                lock = lock_names[rng.randrange(len(lock_names))]
                trace.append(Event(reader, Op.ACQUIRE, lock))
                for _ in range(reader_txn_work):
                    var = f"{reader}_v{rng.randrange(private_vars)}"
                    trace.append(Event(reader, Op.READ, var))
                    trace.append(Event(reader, Op.WRITE, var))
                trace.append(Event(reader, Op.RELEASE, lock))
            trace.append(Event(reader, Op.END))

    trace.append(Event(pinner, Op.END))
    trace.append(Event(coord, Op.END))
    return trace


def independent_trace(
    name: str,
    events: int,
    threads: int,
    locks: int,
    private_vars: int,
    violation_at: Optional[float],
    seed: int = 0,
    txn_work: int = 2,
) -> Trace:
    """The independent-transactions shape (parity rows of Table 1).

    Transactions touch thread-private data plus a lock-protected shared
    slot; completed transactions are garbage collected by both
    algorithms, so the Velodrome graph stays tiny.
    """
    rng = random.Random(seed)
    trace = Trace(name=name)
    names = [f"t{i}" for i in range(threads)]
    lock_names = [f"l{i}" for i in range(max(1, locks))]
    violation_event: Optional[int] = (
        int(events * violation_at) if violation_at is not None else None
    )
    planted = False

    while len(trace) < events:
        if violation_event is not None and not planted and len(trace) >= violation_event:
            _plant_rho2(trace, names[0], names[1 % threads], "va", "vb")
            planted = True
            continue
        thread = names[rng.randrange(threads)]
        lock = lock_names[rng.randrange(len(lock_names))]
        trace.append(Event(thread, Op.BEGIN))
        for _ in range(txn_work):
            var = f"{thread}_v{rng.randrange(private_vars)}"
            trace.append(Event(thread, Op.READ, var))
            trace.append(Event(thread, Op.WRITE, var))
        trace.append(Event(thread, Op.ACQUIRE, lock))
        shared = f"slot_{lock}"
        trace.append(Event(thread, Op.READ, shared))
        trace.append(Event(thread, Op.WRITE, shared))
        trace.append(Event(thread, Op.RELEASE, lock))
        trace.append(Event(thread, Op.END))
    return trace


def unary_trace(
    name: str,
    events: int,
    threads: int,
    locks: int,
    private_vars: int,
    violation_at: Optional[float],
    seed: int = 0,
) -> Trace:
    """The unary-heavy shape (tsp: hundreds of millions of events, 9
    transactions). Almost everything happens outside atomic blocks."""
    rng = random.Random(seed)
    trace = Trace(name=name)
    names = [f"t{i}" for i in range(threads)]
    lock_names = [f"l{i}" for i in range(max(1, locks))]
    violation_event: Optional[int] = (
        int(events * violation_at) if violation_at is not None else None
    )
    planted = False

    while len(trace) < events:
        if violation_event is not None and not planted and len(trace) >= violation_event:
            _plant_rho2(trace, names[0], names[1 % threads], "va", "vb")
            planted = True
            continue
        thread = names[rng.randrange(threads)]
        roll = rng.random()
        if roll < 0.04:
            lock = lock_names[rng.randrange(len(lock_names))]
            trace.append(Event(thread, Op.ACQUIRE, lock))
            trace.append(Event(thread, Op.WRITE, f"slot_{lock}"))
            trace.append(Event(thread, Op.RELEASE, lock))
        elif roll < 0.2:
            trace.append(Event(thread, Op.READ, "shared_config"))
        else:
            var = f"{thread}_v{rng.randrange(private_vars)}"
            op = Op.READ if rng.random() < 0.6 else Op.WRITE
            trace.append(Event(thread, op, var))
    return trace


def whole_thread_trace(
    name: str,
    events: int,
    threads: int,
    locks: int,
    private_vars: int,
    violation_at: Optional[float],
    seed: int = 0,
) -> Trace:
    """The naive-specification shape of Table 2: each thread's whole run
    is a single transaction; any violation appears in a short prefix."""
    rng = random.Random(seed)
    trace = Trace(name=name)
    names = [f"t{i}" for i in range(threads)]
    for thread in names:
        trace.append(Event(thread, Op.BEGIN))
    violation_event: Optional[int] = (
        int(events * violation_at) if violation_at is not None else None
    )
    planted = False
    lock_names = [f"l{i}" for i in range(max(1, locks))]

    while len(trace) < events:
        if violation_event is not None and not planted and len(trace) >= violation_event:
            # Crossed exchange inside the two whole-thread transactions —
            # the naive-spec violation the paper finds "early on".
            a, b = names[0], names[1 % threads]
            trace.append(Event(a, Op.WRITE, "va"))
            trace.append(Event(b, Op.READ, "va"))
            trace.append(Event(b, Op.WRITE, "vb"))
            trace.append(Event(a, Op.READ, "vb"))
            planted = True
            continue
        thread = names[rng.randrange(threads)]
        roll = rng.random()
        if roll < 0.05 and locks:
            lock = lock_names[rng.randrange(len(lock_names))]
            trace.append(Event(thread, Op.ACQUIRE, lock))
            trace.append(Event(thread, Op.READ, f"slot_{lock}"))
            trace.append(Event(thread, Op.RELEASE, lock))
        else:
            var = f"{thread}_v{rng.randrange(private_vars)}"
            op = Op.READ if rng.random() < 0.6 else Op.WRITE
            trace.append(Event(thread, op, var))
    for thread in names:
        trace.append(Event(thread, Op.END))
    return trace


# ---------------------------------------------------------------------------
# The rows
# ---------------------------------------------------------------------------

TABLE1: List[BenchmarkCase] = [
    BenchmarkCase(
        "avrora", 1, "coordinator", 60_000, 7, 7, 60, 0.9, "aerodrome",
        PaperRow("2.4B", 7, "7", "1079K", "498M", False, "TO", "1.5", "> 24000"),
    ),
    BenchmarkCase(
        "elevator", 1, "coordinator", 30_000, 5, 50, 30, None, "aerodrome",
        PaperRow("280K", 5, "50", "725", "22.6K", True, "162", "1.7", "97"),
    ),
    BenchmarkCase(
        "hedc", 1, "independent", 2_000, 7, 13, 40, 0.5, "parity",
        PaperRow("9.8K", 7, "13", "1694", "84", False, "0.07", "0.06", "1.16"),
    ),
    BenchmarkCase(
        "luindex", 1, "independent", 24_000, 3, 65, 120, 0.9, "parity",
        PaperRow("570M", 3, "65", "2.5M", "86M", False, "581", "674", "0.86"),
    ),
    BenchmarkCase(
        "lusearch", 1, "coordinator", 50_000, 14, 40, 80, 0.9, "aerodrome",
        PaperRow("2.0B", 14, "772", "38M", "306M", False, "TO", "5.5", "> 6545"),
    ),
    BenchmarkCase(
        "moldyn", 1, "coordinator", 45_000, 4, 1, 50, 0.8, "aerodrome",
        PaperRow("1.7B", 4, "1", "121K", "1.4M", False, "TO", "54.9", "> 650"),
    ),
    BenchmarkCase(
        "montecarlo", 1, "coordinator", 40_000, 4, 1, 60, 0.7, "aerodrome",
        PaperRow("494M", 4, "1", "30.5M", "812K", False, "TO", "0.75", "> 48000"),
    ),
    BenchmarkCase(
        "philo", 1, "independent", 600, 6, 1, 5, None, "parity",
        PaperRow("613", 6, "1", "24", "0", True, "0.02", "0.02", "1"),
    ),
    BenchmarkCase(
        "pmd", 1, "independent", 18_000, 13, 30, 100, 0.9, "parity",
        PaperRow("367M", 13, "223", "12.9M", "81M", False, "3.1", "3.8", "0.82"),
    ),
    BenchmarkCase(
        "raytracer", 1, "coordinator", 50_000, 4, 1, 60, None, "aerodrome",
        PaperRow("2.8B", 4, "1", "12.6M", "277M", True, "TO", "55m40s", "> 10.7"),
    ),
    BenchmarkCase(
        "sor", 1, "independent", 14_000, 4, 2, 60, 0.85, "parity",
        PaperRow("608M", 4, "2", "1M", "637K", False, "6.9", "9.6", "0.72"),
    ),
    BenchmarkCase(
        "sunflow", 1, "coordinator", 36_000, 16, 9, 50, 0.5, "aerodrome",
        PaperRow("16.8M", 16, "9", "1.2M", "2.5M", False, "67.9", "0.65", "104.5"),
    ),
    BenchmarkCase(
        "tsp", 1, "unary", 18_000, 9, 2, 120, 0.8, "parity",
        PaperRow("312M", 9, "2", "181M", "9", False, "4.2", "5.7", "0.73"),
    ),
    BenchmarkCase(
        "xalan", 1, "independent", 18_000, 13, 60, 100, 0.9, "parity",
        PaperRow("1.0B", 13, "8624", "31M", "214M", False, "1.6", "2.0", "0.8"),
    ),
]

TABLE2: List[BenchmarkCase] = [
    BenchmarkCase(
        "batik", 2, "whole-thread", 16_000, 7, 30, 120, 0.02, "parity",
        PaperRow("186M", 7, "1916", "4.9M", "15M", False, "52.7", "65.5", "0.81"),
    ),
    BenchmarkCase(
        "crypt", 2, "whole-thread", 12_000, 7, 1, 150, 0.02, "parity",
        PaperRow("126M", 7, "1", "9M", "50", False, "92.1", "104", "0.88"),
    ),
    BenchmarkCase(
        "fop", 2, "whole-thread", 12_000, 1, 5, 150, None, "parity",
        PaperRow("96M", 1, "115", "5M", "25M", True, "88.3", "92.5", "0.95"),
    ),
    BenchmarkCase(
        "lufact", 2, "whole-thread", 12_000, 4, 1, 80, 0.02, "parity",
        PaperRow("135M", 4, "1", "252K", "642M", False, "2.4", "2.9", "0.82"),
    ),
    BenchmarkCase(
        "series", 2, "whole-thread", 10_000, 4, 1, 50, 0.05, "parity",
        PaperRow("40M", 4, "1", "20K", "20M", False, "61.0", "15.3", "3.98"),
    ),
    BenchmarkCase(
        "sparsematmult", 2, "whole-thread", 12_000, 4, 1, 80, 0.02, "parity",
        PaperRow("726M", 4, "1", "1.6M", "25", False, "1210", "1197", "1.01"),
    ),
    BenchmarkCase(
        "tomcat", 2, "whole-thread", 12_000, 4, 1, 80, 0.02, "parity",
        PaperRow("726M", 4, "1", "1.6M", "25", False, "3.4", "4.5", "0.75"),
    ),
]

ALL_CASES: List[BenchmarkCase] = TABLE1 + TABLE2

CASES_BY_NAME: Dict[str, BenchmarkCase] = {c.name: c for c in ALL_CASES}


def get_case(name: str) -> BenchmarkCase:
    """Look up a benchmark row by its paper name."""
    try:
        return CASES_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(CASES_BY_NAME)}"
        ) from None
