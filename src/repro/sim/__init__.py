"""Program simulator: the RoadRunner/DaCapo substitute (see DESIGN.md)."""

from .explore import ExplorationResult, enumerate_schedules, explore, fuzz
from .mutations import MUTATORS, MutationError, mutate
from .program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    ProgramError,
    Read,
    Release,
    Stmt,
    ThreadBody,
    Write,
    atomic,
    flatten,
    locked,
    program_of,
)
from .random_traces import RandomTraceConfig, random_trace
from .runtime import DeadlockError, execute
from .trace_zoo import Specimen, all_specimens
from .scheduler import (
    FixedScheduler,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "Program",
    "ProgramError",
    "ThreadBody",
    "Stmt",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Fork",
    "Join",
    "Begin",
    "End",
    "atomic",
    "locked",
    "flatten",
    "program_of",
    "execute",
    "DeadlockError",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "PCTScheduler",
    "FixedScheduler",
    "random_trace",
    "RandomTraceConfig",
    "enumerate_schedules",
    "explore",
    "fuzz",
    "ExplorationResult",
    "mutate",
    "MUTATORS",
    "MutationError",
    "Specimen",
    "all_specimens",
]
