"""Trace mutations for failure-injection testing.

Robust tooling must reject garbage loudly. These mutators take a
well-formed trace and break exactly one well-formedness rule, so tests
can assert that the validator (and only the validator — checkers assume
validated input) catches each corruption class. All mutators are
deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..trace.events import Event, Op
from ..trace.trace import Trace


class MutationError(ValueError):
    """The requested corruption cannot be applied to this trace."""


def _copy(trace: Trace, name_suffix: str) -> Trace:
    mutated = Trace(name=f"{trace.name}+{name_suffix}")
    for event in trace:
        mutated.append(Event(event.thread, event.op, event.target))
    return mutated


def _positions(trace: Trace, op: Op) -> List[int]:
    return [e.idx for e in trace if e.op is op]


def drop_release(trace: Trace, seed: int = 0) -> Trace:
    """Remove one release, then duplicate a later acquire of that lock
    by another thread so the corruption is observable (double acquire)."""
    rng = random.Random(seed)
    releases = _positions(trace, Op.RELEASE)
    if not releases:
        raise MutationError("trace has no release events")
    victim = rng.choice(releases)
    lock = trace[victim].target
    holder = trace[victim].thread
    mutated = Trace(name=f"{trace.name}+drop_release")
    for event in trace:
        if event.idx == victim:
            continue
        mutated.append(Event(event.thread, event.op, event.target))
    # Append an acquire by a different thread: with the release gone the
    # lock is still held, making the trace ill-formed for sure.
    other = next(
        (t for t in sorted(trace.threads()) if t != holder), f"{holder}_evil"
    )
    mutated.append(Event(other, Op.ACQUIRE, lock))
    return mutated


def drop_begin(trace: Trace, seed: int = 0) -> Trace:
    """Remove one begin event, unbalancing its matching end."""
    rng = random.Random(seed)
    begins = _positions(trace, Op.BEGIN)
    if not begins:
        raise MutationError("trace has no begin events")
    victim = rng.choice(begins)
    mutated = Trace(name=f"{trace.name}+drop_begin")
    for event in trace:
        if event.idx == victim:
            continue
        mutated.append(Event(event.thread, event.op, event.target))
    return mutated


def duplicate_acquire(trace: Trace, seed: int = 0) -> Trace:
    """Re-issue an acquire from a different thread while the lock is held."""
    rng = random.Random(seed)
    candidates = []
    holder: Dict[str, str] = {}
    for event in trace:
        if event.op is Op.ACQUIRE:
            holder[event.target] = event.thread  # type: ignore[index]
            candidates.append(event.idx)
        elif event.op is Op.RELEASE:
            holder.pop(event.target, None)
    if not candidates:
        raise MutationError("trace has no acquire events")
    victim = rng.choice(candidates)
    lock = trace[victim].target
    thread = trace[victim].thread
    other = next(
        (t for t in sorted(trace.threads()) if t != thread), f"{thread}_evil"
    )
    mutated = Trace(name=f"{trace.name}+dup_acquire")
    for event in trace:
        mutated.append(Event(event.thread, event.op, event.target))
        if event.idx == victim:
            mutated.append(Event(other, Op.ACQUIRE, lock))
    return mutated


def orphan_end(trace: Trace, seed: int = 0) -> Trace:
    """Insert an end event for a thread with no open transaction."""
    rng = random.Random(seed)
    thread = rng.choice(sorted(trace.threads())) if len(trace) else "t0"
    mutated = _copy(trace, "orphan_end")
    # Prepend: at position 0 no transaction can be open.
    prefixed = Trace(name=mutated.name)
    prefixed.append(Event(thread, Op.END))
    for event in mutated:
        prefixed.append(Event(event.thread, event.op, event.target))
    return prefixed


def event_after_join(trace: Trace, seed: int = 0) -> Trace:
    """Append an event by a thread that has already been joined."""
    joins = _positions(trace, Op.JOIN)
    if not joins:
        raise MutationError("trace has no join events")
    rng = random.Random(seed)
    victim = trace[rng.choice(joins)]
    mutated = _copy(trace, "after_join")
    mutated.append(Event(victim.target, Op.READ, "zombie"))  # type: ignore[arg-type]
    return mutated


def fork_started_thread(trace: Trace, seed: int = 0) -> Trace:
    """Append a fork of a thread that already performed events."""
    rng = random.Random(seed)
    threads = sorted(trace.threads())
    if len(threads) < 2:
        raise MutationError("need two threads")
    child = rng.choice(threads)
    parent = next(t for t in threads if t != child)
    mutated = _copy(trace, "late_fork")
    mutated.append(Event(parent, Op.FORK, child))
    return mutated


#: All mutators, keyed by the well-formedness rule they break.
MUTATORS: Dict[str, Callable[[Trace, int], Trace]] = {
    "drop_release": drop_release,
    "drop_begin": drop_begin,
    "duplicate_acquire": duplicate_acquire,
    "orphan_end": orphan_end,
    "event_after_join": event_after_join,
    "fork_started_thread": fork_started_thread,
}


def mutate(trace: Trace, kind: str, seed: int = 0) -> Trace:
    """Apply one named corruption (see :data:`MUTATORS`)."""
    try:
        mutator = MUTATORS[kind]
    except KeyError:
        raise MutationError(
            f"unknown mutation {kind!r}; choose from {sorted(MUTATORS)}"
        ) from None
    return mutator(trace, seed)
