"""Thread schedulers.

A scheduler resolves the nondeterminism of a concurrent program: at each
step the runtime presents the set of runnable threads and the scheduler
picks one. All schedulers here are deterministic functions of their
construction parameters (seeded PRNGs included), so a (program, scheduler)
pair always yields the same trace — the reproducibility requirement the
paper meets by logging traces once and analyzing the log.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence


class Scheduler(ABC):
    """Strategy interface for picking the next thread to run."""

    @abstractmethod
    def pick(self, runnable: Sequence[str], step: int) -> str:
        """Choose one of ``runnable`` (non-empty) for step ``step``."""


class RoundRobinScheduler(Scheduler):
    """Cycle through threads, running up to ``quantum`` steps per turn.

    With ``quantum=1`` this is the finest-grained fair interleaving; a
    large quantum approximates coarse context switching (fewer
    interleavings, transactions mostly uninterrupted).
    """

    def __init__(self, quantum: int = 1) -> None:
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._current: Optional[str] = None
        self._used = 0

    def pick(self, runnable: Sequence[str], step: int) -> str:
        if (
            self._current in runnable
            and self._used < self.quantum
        ):
            self._used += 1
            return self._current
        if self._current in runnable:
            # Quantum exhausted: move to the next runnable thread after
            # the current one, wrapping around.
            idx = runnable.index(self._current)
            chosen = runnable[(idx + 1) % len(runnable)]
        else:
            chosen = runnable[0]
        self._current = chosen
        self._used = 1
        return chosen


class RandomScheduler(Scheduler):
    """Seeded uniform-random scheduling with optional stickiness.

    Args:
        seed: PRNG seed; equal seeds give equal schedules.
        stickiness: Probability of staying on the previous thread while it
            remains runnable. Higher stickiness yields longer uninterrupted
            runs (more serial-looking traces).
    """

    def __init__(self, seed: int = 0, stickiness: float = 0.0) -> None:
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError("stickiness must be in [0, 1]")
        self._rng = random.Random(seed)
        self.stickiness = stickiness
        self._current: Optional[str] = None

    def pick(self, runnable: Sequence[str], step: int) -> str:
        if (
            self._current in runnable
            and self.stickiness > 0.0
            and self._rng.random() < self.stickiness
        ):
            return self._current
        self._current = runnable[self._rng.randrange(len(runnable))]
        return self._current


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010).

    The randomized-exploration idea behind the §6 tools (CalFuzzer,
    CTrigger, Penelope) made principled: assign each thread a random
    priority, always run the highest-priority runnable thread, and
    demote the running thread at ``depth - 1`` pre-chosen step indices.
    For a bug needing ``d`` ordering constraints over ``n`` threads and
    ``k`` steps, one run finds it with probability ≥ 1/(n·k^(d-1)) —
    far better than uniform random for rare interleavings, which is why
    ``explore.fuzz``-style searches prefer it.

    Deterministic in (seed, depth, max_steps): the priority-change
    points are drawn up front.

    Args:
        seed: PRNG seed.
        depth: The bug-depth parameter ``d`` (≥ 1); ``depth - 1``
            priority change points are inserted.
        max_steps: The steps bound ``k`` the change points are drawn
            from. **Set it near the expected run length** — with the
            default horizon, short programs rarely see a change point
            and the schedule degenerates to priority-serial.
    """

    def __init__(self, seed: int = 0, depth: int = 3, max_steps: int = 10_000):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if max_steps < 1:
            raise ValueError("max_steps must be positive")
        self._rng = random.Random(seed)
        self.depth = depth
        self.max_steps = max_steps
        self._change_points = set(
            self._rng.sample(range(max_steps), min(depth - 1, max_steps))
        )
        self._priority: dict = {}
        #: Low priority band handed out at change points; always below
        #: every initial priority.
        self._next_low = 0.0

    def _priority_of(self, thread: str) -> float:
        priority = self._priority.get(thread)
        if priority is None:
            # Initial priorities live in [1, 2): above every demotion.
            priority = 1.0 + self._rng.random()
            self._priority[thread] = priority
        return priority

    def pick(self, runnable: Sequence[str], step: int) -> str:
        chosen = max(runnable, key=lambda t: (self._priority_of(t), t))
        if step in self._change_points:
            # Demote the thread we just ran below everything else seen
            # so far; successive demotions stack (lower and lower).
            self._next_low -= 1.0
            self._priority[chosen] = self._next_low
        return chosen


class FixedScheduler(Scheduler):
    """Replay an explicit thread sequence (tests and counterexamples).

    Raises if the scripted thread is not runnable at its step — such a
    script does not correspond to any real execution.
    """

    def __init__(self, order: Sequence[str]) -> None:
        self.order = list(order)

    def pick(self, runnable: Sequence[str], step: int) -> str:
        if step >= len(self.order):
            raise IndexError(f"schedule script exhausted at step {step}")
        choice = self.order[step]
        if choice not in runnable:
            raise ValueError(
                f"scripted thread {choice!r} not runnable at step {step} "
                f"(runnable: {list(runnable)})"
            )
        return choice
