"""Program execution: interleave threads under a scheduler, emit a trace.

This is the substitute for RoadRunner's logging pass (paper, Section 5.1):
where the paper instruments a JVM and records the events a real execution
performs, we execute a :class:`~repro.sim.program.Program` under a
deterministic :class:`~repro.sim.scheduler.Scheduler` and record the same
eight kinds of events. The produced traces satisfy the paper's
well-formedness assumptions by construction (the runtime blocks threads
on held locks and unfinished joins, and starts threads only after their
fork), and :func:`execute` re-validates the output in debug mode.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..trace.events import Event, Op
from ..trace.trace import Trace
from ..trace.wellformed import validate
from .program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    Read,
    Release,
    Write,
)
from .scheduler import RoundRobinScheduler, Scheduler


class DeadlockError(RuntimeError):
    """No runnable thread remains but the program has not finished."""

    def __init__(self, blocked: Dict[str, str]) -> None:
        self.blocked = blocked
        detail = "; ".join(f"{t}: {why}" for t, why in sorted(blocked.items()))
        super().__init__(f"deadlock — {detail}")


class _ThreadContext:
    """Runtime state of one program thread."""

    __slots__ = ("body", "pc", "started", "lock_depth")

    def __init__(self, body, started: bool) -> None:
        self.body = body
        self.pc = 0
        self.started = started
        self.lock_depth: Dict[str, int] = {}

    @property
    def finished(self) -> bool:
        return self.pc >= len(self.body.statements)

    @property
    def next_stmt(self):
        return self.body.statements[self.pc]


def execute(
    program: Program,
    scheduler: Scheduler = None,
    *,
    validate_output: bool = False,
    max_steps: int = 100_000_000,
) -> Trace:
    """Run ``program`` under ``scheduler`` and return the logged trace.

    Args:
        program: The program to execute.
        scheduler: Interleaving strategy; defaults to fine-grained round
            robin.
        validate_output: Re-check the emitted trace's well-formedness
            (useful in tests; the runtime guarantees it by construction).
        max_steps: Safety bound against misbehaving schedulers.

    Raises:
        DeadlockError: If no thread can make progress (e.g. a lock cycle
            or a join on a thread that never finishes).
    """
    if scheduler is None:
        scheduler = RoundRobinScheduler()
    roots = set(program.root_threads())
    contexts: Dict[str, _ThreadContext] = {
        body.name: _ThreadContext(body, started=body.name in roots)
        for body in program.threads
    }
    lock_holder: Dict[str, str] = {}
    trace = Trace(name=program.name)
    step = 0

    def is_runnable(name: str) -> bool:
        ctx = contexts[name]
        if not ctx.started or ctx.finished:
            return False
        stmt = ctx.next_stmt
        if isinstance(stmt, Acquire):
            holder = lock_holder.get(stmt.lock)
            return holder is None or holder == name
        if isinstance(stmt, Join):
            target = contexts[stmt.thread]
            return target.started and target.finished
        return True

    def blocked_reason(name: str) -> str:
        ctx = contexts[name]
        stmt = ctx.next_stmt
        if isinstance(stmt, Acquire):
            return f"waiting for lock {stmt.lock} held by {lock_holder.get(stmt.lock)}"
        if isinstance(stmt, Join):
            return f"waiting to join {stmt.thread}"
        return "not started"

    order = program.thread_names()
    while True:
        runnable = [name for name in order if is_runnable(name)]
        if not runnable:
            unfinished = {
                name: blocked_reason(name)
                for name, ctx in contexts.items()
                if ctx.started and not ctx.finished
            }
            never_started = {
                name: "never forked"
                for name, ctx in contexts.items()
                if not ctx.started
            }
            if unfinished or never_started:
                raise DeadlockError({**unfinished, **never_started})
            break
        if step >= max_steps:
            raise RuntimeError(f"execution exceeded {max_steps} steps")
        name = scheduler.pick(runnable, step)
        if name not in runnable:
            raise ValueError(f"scheduler picked non-runnable thread {name!r}")
        ctx = contexts[name]
        stmt = ctx.next_stmt
        ctx.pc += 1
        step += 1

        if isinstance(stmt, Read):
            trace.append(Event(name, Op.READ, stmt.var))
        elif isinstance(stmt, Write):
            trace.append(Event(name, Op.WRITE, stmt.var))
        elif isinstance(stmt, Acquire):
            ctx.lock_depth[stmt.lock] = ctx.lock_depth.get(stmt.lock, 0) + 1
            lock_holder[stmt.lock] = name
            trace.append(Event(name, Op.ACQUIRE, stmt.lock))
        elif isinstance(stmt, Release):
            depth = ctx.lock_depth.get(stmt.lock, 0)
            if depth == 0 or lock_holder.get(stmt.lock) != name:
                raise RuntimeError(
                    f"{name} releases lock {stmt.lock} it does not hold"
                )
            ctx.lock_depth[stmt.lock] = depth - 1
            if depth == 1:
                del lock_holder[stmt.lock]
            trace.append(Event(name, Op.RELEASE, stmt.lock))
        elif isinstance(stmt, Fork):
            target = contexts[stmt.thread]
            if target.started:
                raise RuntimeError(f"{name} forks already-started {stmt.thread}")
            target.started = True
            trace.append(Event(name, Op.FORK, stmt.thread))
        elif isinstance(stmt, Join):
            trace.append(Event(name, Op.JOIN, stmt.thread))
        elif isinstance(stmt, Begin):
            trace.append(Event(name, Op.BEGIN, stmt.label))
        elif isinstance(stmt, End):
            trace.append(Event(name, Op.END, stmt.label))
        else:  # pragma: no cover - exhaustive over Stmt
            raise AssertionError(f"unhandled statement {stmt!r}")

    if validate_output:
        validate(trace)
    return trace
