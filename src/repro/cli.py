"""Command-line interface.

Mirrors the paper artifact's workflow (Appendix D):

* ``repro metainfo trace.std`` — RAPID's MetaInfo analysis;
* ``repro check trace.std --algorithm aerodrome`` — run one checker;
* ``repro generate sunflow -o sunflow.std`` — produce a benchmark analog
  trace (the RoadRunner logging + atomicity-spec filtering stage);
* ``repro table1`` / ``repro table2`` — regenerate the paper's tables;
* ``repro scaling`` — the linear-vs-cubic scaling sweep;
* ``repro algorithms`` — list available checkers.

Beyond the artifact workflow, the extension analyses are also exposed:
``profile`` (workload shape report), ``dot`` (Graphviz export),
``zoo`` (named example traces), ``violations`` (report-and-continue),
``atomizer`` (Lipton-reduction warnings), ``lockset`` (Eraser) and
``viewserial`` (exact view serializability on small traces).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.causal import check_causal_atomicity
from .analysis.explain import explain
from .analysis.graph_export import event_graph_dot, save_dot, transaction_graph_dot
from .analysis.lockset import lockset_analysis
from .analysis.profile import format_profile, profile_trace
from .analysis.races import find_races
from .analysis.serial_witness import serial_witness
from .analysis.view_serializability import (
    TooManyTransactions,
    serializing_order,
)
from .baselines.atomizer import atomizer_warnings
from .core.multi import find_all_violations
from .spec.inference import InferenceError, infer_spec
from .analysis.minimize import minimize_violation
from .analysis.timeline import render_with_verdict
from .bench.harness import run_scaling, run_table
from .bench.memory import format_growth, sample_state_growth
from .bench.reporting import format_comparison, format_scaling, format_table
from .core.checker import available_algorithms, check_trace
from .sim.workloads.benchmarks import ALL_CASES, TABLE1, TABLE2, get_case
from .trace.binary import BinaryTraceError, load_binary, save_binary
from .trace.metainfo import metainfo
from .trace.packed import pack
from .trace.parser import TraceParseError, load_trace
from .trace.trace import Trace
from .trace.wellformed import WellFormednessError, validate
from .trace.writer import save_trace


def _load(path: str) -> Trace:
    """Load a trace, dispatching on extension (.rtb = binary).

    Unreadable or corrupt inputs exit with a diagnostic instead of a
    traceback — they are user errors, not bugs.
    """
    try:
        if str(path).endswith(".rtb"):
            return load_binary(path)
        return load_trace(path)
    except (BinaryTraceError, TraceParseError, OSError) as error:
        print(f"cannot load {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_check(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    if not args.no_validate:
        try:
            validate(trace)
        except WellFormednessError as error:
            print(f"ill-formed trace: {error}", file=sys.stderr)
            return 2
    events = pack(trace) if args.packed else trace
    result = check_trace(events, algorithm=args.algorithm)
    print(result)
    return 0 if result.serializable else 1


def _cmd_metainfo(args: argparse.Namespace) -> int:
    info = metainfo(_load(args.trace))
    print(info)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    case = get_case(args.benchmark)
    trace = case.generate(seed=args.seed, scale=args.scale)
    if args.binary or str(args.output).endswith(".rtb"):
        save_binary(trace, args.output)
    else:
        save_trace(trace, args.output)
    print(f"wrote {len(trace)} events to {args.output}")
    return 0


def _table_command(args: argparse.Namespace, cases) -> int:
    results = run_table(
        cases, seed=args.seed, scale=args.scale, timeout=args.timeout
    )
    print(format_table(results, title=f"Measured (scale={args.scale})"))
    print()
    print(format_comparison(results, title="Paper vs. measured"))
    mismatches = [r for r in results if not r.verdicts_agree]
    if mismatches:
        print(
            "verdict disagreement on: "
            + ", ".join(r.case.name for r in mismatches),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Reuses the perf harness's own argv parsing so the flags of
    # ``repro bench`` and ``benchmarks/perf_harness.py`` cannot drift.
    from .bench.perf import main as bench_main

    argv = [
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--repeats", str(args.repeats),
        "--algorithm", args.algorithm,
        "--tables", args.tables,
        "-o", args.output,
    ]
    if args.no_scaling:
        argv.append("--no-scaling")
    if args.check:
        argv.append("--check")
    return bench_main(argv)


def _cmd_scaling(args: argparse.Namespace) -> int:
    case = get_case(args.benchmark)
    sizes = [int(s) for s in args.sizes.split(",")]
    points = run_scaling(case, sizes, seed=args.seed, timeout=args.timeout)
    print(format_scaling(points, title=f"Scaling on {case.name!r}"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    explanation = explain(trace)
    if explanation is None:
        print("conflict serializable: nothing to explain")
        return 0
    print(explanation.render())
    return 1


def _cmd_races(args: argparse.Namespace) -> int:
    races = find_races(_load(args.trace))
    if not races:
        print("no happens-before data races")
        return 0
    for race in races:
        print(race)
    print(f"{len(races)} race(s) on {len({r.variable for r in races})} variable(s)")
    return 1


def _cmd_causal(args: argparse.Namespace) -> int:
    report = check_causal_atomicity(_load(args.trace))
    print(report)
    return 0 if report.all_atomic else 1


def _cmd_algorithms(args: argparse.Namespace) -> int:
    for name in available_algorithms():
        print(name)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    print(format_profile(profile_trace(_load(args.trace)), top=args.top))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    if args.events:
        dot = event_graph_dot(trace)
    else:
        dot = transaction_graph_dot(trace, include_unary=args.include_unary)
    if args.output:
        save_dot(dot, args.output)
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from .sim import trace_zoo

    if args.name is None:
        for specimen in trace_zoo.all_specimens():
            verdict = "✓" if specimen.conflict_serializable else "✗"
            print(f"{verdict} {specimen.name:<22} {specimen.description}")
        return 0
    try:
        specimen = trace_zoo.get(args.name)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    trace = specimen.trace()
    if args.output:
        save_trace(trace, args.output)
        print(f"wrote {len(trace)} events to {args.output}")
    elif args.render:
        print(render_with_verdict(trace))
    else:
        for event in trace:
            print(event)
    return 0


def _cmd_violations(args: argparse.Namespace) -> int:
    violations = find_all_violations(
        _load(args.trace),
        algorithm=args.algorithm,
        limit=args.limit,
        dedupe=args.dedupe,
    )
    for violation in violations:
        print(violation)
    print(f"{len(violations)} violation report(s)")
    return 0 if not violations else 1


def _cmd_atomizer(args: argparse.Namespace) -> int:
    warnings = atomizer_warnings(_load(args.trace))
    for warning in warnings:
        print(warning)
    print(f"{len(warnings)} reduction warning(s)")
    return 0 if not warnings else 1


def _cmd_lockset(args: argparse.Namespace) -> int:
    report = lockset_analysis(_load(args.trace))
    for warning in report.warnings:
        print(warning)
    print(f"{len(report.warnings)} lockset warning(s)")
    return 0 if not report.warnings else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    try:
        minimized = minimize_violation(trace, algorithm=args.algorithm)
    except ValueError as error:
        print(f"cannot minimize: {error}", file=sys.stderr)
        return 2
    print(
        f"minimized {len(trace)} -> {len(minimized)} events "
        f"({len(trace) - len(minimized)} removed)"
    )
    if args.output:
        save_trace(minimized, args.output)
        print(f"wrote {args.output}")
    else:
        print(render_with_verdict(minimized, algorithm=args.algorithm))
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    points = sample_state_growth(
        _load(args.trace), algorithm=args.algorithm, samples=args.samples
    )
    print(f"[{args.algorithm}] state growth:")
    print(format_growth(points))
    return 0


def _cmd_inferspec(args: argparse.Namespace) -> int:
    from .spec.atomicity_spec import save_spec

    trace = _load(args.trace)
    try:
        inferred = infer_spec(trace, algorithm=args.algorithm)
    except InferenceError as error:
        print(f"inference failed: {error}", file=sys.stderr)
        return 2
    print(inferred)
    for method, violation in inferred.removed:
        print(f"  refuted {method}: {violation}")
    if args.output:
        save_spec(inferred.spec, args.output)
        print(f"wrote spec to {args.output}")
    return 0 if not inferred.removed else 1


def _cmd_serialize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    witness = serial_witness(trace)
    if witness is None:
        print("not conflict serializable: no serial witness", file=sys.stderr)
        return 1
    if args.output:
        save_trace(witness, args.output)
        print(f"wrote equivalent serial execution to {args.output}")
    else:
        for event in witness:
            print(event)
    return 0


def _cmd_viewserial(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    try:
        order = serializing_order(trace)
    except TooManyTransactions as error:
        print(f"undecided: {error}", file=sys.stderr)
        return 2
    if order is None:
        print("not view serializable")
        return 1
    print("view serializable; witness order: " + " ".join(f"T{t}" for t in order))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AeroDrome reproduction: atomicity checking on traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check a trace for atomicity violations")
    check.add_argument("trace", help="path to a .std trace file")
    check.add_argument(
        "--algorithm",
        default="aerodrome",
        choices=available_algorithms(),
    )
    check.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the well-formedness check",
    )
    check.add_argument(
        "--packed",
        action="store_true",
        help="compile the trace once and run the packed fast path",
    )
    check.set_defaults(func=_cmd_check)

    meta = sub.add_parser("metainfo", help="print trace characteristics")
    meta.add_argument("trace")
    meta.set_defaults(func=_cmd_metainfo)

    gen = sub.add_parser("generate", help="generate a benchmark analog trace")
    gen.add_argument("benchmark", choices=sorted(c.name for c in ALL_CASES))
    gen.add_argument("-o", "--output", required=True)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument(
        "--binary",
        action="store_true",
        help="write the compact binary format instead of .std text",
    )
    gen.set_defaults(func=_cmd_generate)

    for table_name, cases in (("table1", TABLE1), ("table2", TABLE2)):
        table = sub.add_parser(
            table_name, help=f"regenerate the paper's {table_name}"
        )
        table.add_argument("--seed", type=int, default=7)
        table.add_argument("--scale", type=float, default=1.0)
        table.add_argument(
            "--timeout",
            type=float,
            default=20.0,
            help="per-run timeout in seconds (paper: 10 hours)",
        )
        table.set_defaults(func=_table_command, cases=cases)

    bench = sub.add_parser(
        "bench",
        help="packed-vs-seed throughput benchmark (writes BENCH_PR1.json)",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--algorithm", default="aerodrome")
    bench.add_argument("--tables", default="1,2")
    bench.add_argument("--no-scaling", action="store_true")
    bench.add_argument("-o", "--output", default="BENCH_PR1.json")
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless packed and string paths agree everywhere",
    )
    bench.set_defaults(func=_cmd_bench)

    scaling = sub.add_parser("scaling", help="linear-vs-cubic scaling sweep")
    scaling.add_argument("--benchmark", default="raytracer")
    scaling.add_argument(
        "--sizes", default="4000,8000,16000,32000,64000"
    )
    scaling.add_argument("--seed", type=int, default=7)
    scaling.add_argument("--timeout", type=float, default=60.0)
    scaling.set_defaults(func=_cmd_scaling)

    explain_cmd = sub.add_parser(
        "explain", help="extract a witness cycle for a violating trace"
    )
    explain_cmd.add_argument("trace")
    explain_cmd.set_defaults(func=_cmd_explain)

    races_cmd = sub.add_parser(
        "races", help="happens-before data race detection (FastTrack)"
    )
    races_cmd.add_argument("trace")
    races_cmd.set_defaults(func=_cmd_races)

    causal_cmd = sub.add_parser(
        "causal", help="per-transaction causal atomicity report"
    )
    causal_cmd.add_argument("trace")
    causal_cmd.set_defaults(func=_cmd_causal)

    algos = sub.add_parser("algorithms", help="list available checkers")
    algos.set_defaults(func=_cmd_algorithms)

    profile_cmd = sub.add_parser("profile", help="workload shape report")
    profile_cmd.add_argument("trace")
    profile_cmd.add_argument("--top", type=int, default=10,
                             help="hot variables/locks to list")
    profile_cmd.set_defaults(func=_cmd_profile)

    dot_cmd = sub.add_parser("dot", help="Graphviz export of a trace")
    dot_cmd.add_argument("trace")
    dot_cmd.add_argument("-o", "--output", help="write DOT here (else stdout)")
    dot_cmd.add_argument(
        "--events",
        action="store_true",
        help="event-level conflict graph instead of the transaction graph",
    )
    dot_cmd.add_argument(
        "--include-unary",
        action="store_true",
        help="draw unary transactions too",
    )
    dot_cmd.set_defaults(func=_cmd_dot)

    zoo_cmd = sub.add_parser("zoo", help="list or write example traces")
    zoo_cmd.add_argument("name", nargs="?", help="specimen to print/write")
    zoo_cmd.add_argument("-o", "--output", help="write the specimen as .std")
    zoo_cmd.add_argument(
        "--render",
        action="store_true",
        help="draw the specimen in the paper's column layout",
    )
    zoo_cmd.set_defaults(func=_cmd_zoo)

    memory_cmd = sub.add_parser(
        "memory", help="sample a checker's state growth along a trace"
    )
    memory_cmd.add_argument("trace")
    memory_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=available_algorithms()
    )
    memory_cmd.add_argument("--samples", type=int, default=10)
    memory_cmd.set_defaults(func=_cmd_memory)

    violations_cmd = sub.add_parser(
        "violations", help="report-and-continue: list every violation"
    )
    violations_cmd.add_argument("trace")
    violations_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=available_algorithms()
    )
    violations_cmd.add_argument("--limit", type=int, default=None)
    violations_cmd.add_argument("--dedupe", action="store_true")
    violations_cmd.set_defaults(func=_cmd_violations)

    atomizer_cmd = sub.add_parser(
        "atomizer", help="Lipton-reduction warnings (unsound baseline)"
    )
    atomizer_cmd.add_argument("trace")
    atomizer_cmd.set_defaults(func=_cmd_atomizer)

    lockset_cmd = sub.add_parser(
        "lockset", help="Eraser lockset race warnings"
    )
    lockset_cmd.add_argument("trace")
    lockset_cmd.set_defaults(func=_cmd_lockset)

    viewserial_cmd = sub.add_parser(
        "viewserial", help="exact view-serializability (small traces)"
    )
    viewserial_cmd.add_argument("trace")
    viewserial_cmd.set_defaults(func=_cmd_viewserial)

    serialize_cmd = sub.add_parser(
        "serialize", help="emit an equivalent serial execution"
    )
    serialize_cmd.add_argument("trace")
    serialize_cmd.add_argument("-o", "--output")
    serialize_cmd.set_defaults(func=_cmd_serialize)

    inferspec_cmd = sub.add_parser(
        "inferspec", help="infer a trace-consistent atomicity spec"
    )
    inferspec_cmd.add_argument("trace", help="raw trace with labeled markers")
    inferspec_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=available_algorithms()
    )
    inferspec_cmd.add_argument("-o", "--output", help="write the spec file")
    inferspec_cmd.set_defaults(func=_cmd_inferspec)

    minimize_cmd = sub.add_parser(
        "minimize", help="shrink a violating trace to a 1-minimal core"
    )
    minimize_cmd.add_argument("trace")
    minimize_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=available_algorithms()
    )
    minimize_cmd.add_argument("-o", "--output", help="write the core as .std")
    minimize_cmd.set_defaults(func=_cmd_minimize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if hasattr(args, "cases"):
        return args.func(args, args.cases)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
