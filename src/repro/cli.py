"""Command-line interface.

Mirrors the paper artifact's workflow (Appendix D):

* ``repro metainfo trace.std`` — RAPID's MetaInfo analysis;
* ``repro check trace.std --analysis aerodrome,races,lockset`` — run any
  set of registered analyses on one trace ingest;
* ``repro generate sunflow -o sunflow.std`` — produce a benchmark analog
  trace (the RoadRunner logging + atomicity-spec filtering stage);
* ``repro table1`` / ``repro table2`` — regenerate the paper's tables;
* ``repro scaling`` — the linear-vs-cubic scaling sweep;
* ``repro algorithms`` — list every registered analysis.

The analysis verbs — ``check``, ``races``, ``lockset``, ``viewserial``,
``causal``, ``profile``, ``violations``, ``explain`` — are thin wrappers
over one :class:`repro.api.Session` run each: the trace is ingested
once, every requested analysis rides the same sweep, and ``--json``
emits the versioned ``repro-report/1`` document (see ``docs/API.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Union

from .api.analysis import Analysis, CheckerAnalysis
from .api.registry import available_analyses, checker_names
from .api.report import SessionResult
from .api.session import Session
from .analysis.minimize import minimize_violation
from .analysis.graph_export import event_graph_dot, save_dot, transaction_graph_dot
from .analysis.profile import format_profile
from .analysis.timeline import render_with_verdict
from .bench.harness import run_scaling, run_table
from .bench.memory import format_growth, sample_state_growth
from .bench.reporting import format_comparison, format_scaling, format_table
from .baselines.atomizer import atomizer_warnings
from .sim.workloads.benchmarks import ALL_CASES, TABLE1, TABLE2, get_case
from .spec.inference import InferenceError, infer_spec
from .trace.binary import BinaryTraceError, load_binary, save_binary
from .trace.metainfo import metainfo
from .trace.packed import PackedTrace, pack
from .trace.packed_io import PackedTraceError, load_any, save_packed
from .trace.parser import TraceParseError, load_trace
from .trace.trace import Trace
from .trace.wellformed import WellFormednessError, validate
from .trace.writer import save_trace

_EPILOG = (
    "Session/Analysis API, run modes and the repro-report/1 JSON schema "
    "are documented in docs/API.md. Trace files are sniffed by magic "
    "bytes: .std text, REPROTR1 binary (.rtb), and the zero-copy "
    "repro-packed/1 column store (.rpt — write one with 'repro pack', "
    "spec in docs/PERF.md) all load interchangeably. --jobs N fans a "
    "multi-analysis session across N worker processes (docs/API.md, "
    "'Parallel execution')."
)


def _load(path: str) -> Union[Trace, PackedTrace]:
    """Load a trace of any format, sniffing the magic bytes.

    ``repro-packed/1`` files come back as mmap-backed packed traces
    (already compiled — analyses take the packed fast path with zero
    per-event ingest work); ``REPROTR1`` binary and ``.std`` text come
    back as string traces. Unreadable or corrupt inputs exit with a
    diagnostic instead of a traceback — they are user errors, not bugs.
    """
    try:
        return load_any(path)
    except (
        PackedTraceError, BinaryTraceError, TraceParseError, OSError
    ) as error:
        print(f"cannot load {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def _run_session(
    args: argparse.Namespace,
    analyses: Sequence[Union[str, Analysis]],
    trace: Optional[Union[Trace, PackedTrace]] = None,
) -> SessionResult:
    """One Session.run() — the shared engine behind every analysis verb."""
    if trace is None:
        trace = _load(args.trace)
    events = pack(trace) if getattr(args, "packed", False) else trace
    try:
        session = Session(events, analyses, path=getattr(args, "trace", None))
    except (ValueError, TypeError) as error:
        print(error, file=sys.stderr)
        raise SystemExit(2)
    return session.run(jobs=getattr(args, "jobs", 1))


def _emit_json(result: SessionResult) -> None:
    print(json.dumps(result.to_json(), indent=2))


def _cmd_check(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    # repro-packed/1 input skips the well-formedness sweep: the store
    # was validated at pack time, and re-validating would reconstruct
    # every Event — exactly the O(n) cold start the format eliminates.
    if not args.no_validate and not isinstance(trace, PackedTrace):
        try:
            validate(trace)
        except WellFormednessError as error:
            print(f"ill-formed trace: {error}", file=sys.stderr)
            return 2
    if args.analysis:
        names = [name.strip() for name in args.analysis.split(",") if name.strip()]
        # An explicitly requested --algorithm still runs alongside.
        if args.algorithm is not None and args.algorithm not in names:
            names.insert(0, args.algorithm)
    else:
        names = [args.algorithm or "aerodrome"]
    result = _run_session(args, names, trace=trace)
    if args.json:
        _emit_json(result)
    elif len(result.reports) == 1:
        report = next(iter(result.reports.values()))
        # Single-checker runs keep the historical CheckResult line.
        print(report.native if report.kind == "checker" else report.summary)
    else:
        for report in result.reports.values():
            print(f"[{report.analysis}] {report.summary}")
    # Same convention as the dedicated verbs: 2 = could not decide.
    return {"pass": 0, "fail": 1, "undecided": 2}[result.verdict_label]


def _cmd_pack(args: argparse.Namespace) -> int:
    from .trace.packed_io import parse_packed, sniff_format

    try:
        kind = sniff_format(args.trace)
        if kind == "text":
            # Fused text->packed parse: no Event objects on the way in.
            packed = parse_packed(args.trace)
        else:
            packed = pack(_load(args.trace))
    except (
        PackedTraceError, BinaryTraceError, TraceParseError, OSError
    ) as error:
        print(f"cannot pack {args.trace}: {error}", file=sys.stderr)
        return 2
    if not args.no_validate:
        # Well-formedness is checked once here, so `repro check` can
        # trust .rpt files and skip the O(n) validation sweep forever.
        try:
            validate(packed)
        except WellFormednessError as error:
            print(f"ill-formed trace: {error}", file=sys.stderr)
            return 2
    save_packed(packed, args.output)
    from pathlib import Path as _Path

    size = _Path(args.output).stat().st_size
    print(
        f"packed {len(packed)} events "
        f"({len(packed.thread_names)} threads, "
        f"{len(packed.variable_names)} variables, "
        f"{len(packed.lock_names)} locks) -> {args.output} ({size} bytes)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServiceServer

    try:
        server = ServiceServer(
            host=args.host,
            port=args.port,
            shards=args.shards,
            workers=args.workers,
            spool=args.spool,
            checkpoint_every=args.checkpoint_every,
            queue_size=args.queue_size,
            read_timeout=args.read_timeout or None,
            backend=args.backend,
            cluster=args.cluster,
            join=args.join or (),
            node_id=args.node_id,
            advertise=args.advertise,
            vnodes=args.vnodes,
            gossip_interval=args.gossip_interval,
            suspect_after=args.suspect_after,
            tenant_quota=args.tenant_quota,
            metrics_port=args.metrics_port,
        )
    except OSError as error:
        print(f"cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    if server.cluster is not None:
        print(
            f"cluster node {server.cluster.node_id} "
            f"(advertising {server.cluster.info.address})",
            file=sys.stderr,
        )
    if server.recovered:
        print(
            f"recovered {len(server.recovered)} session(s) from spool: "
            + ", ".join(server.recovered),
            file=sys.stderr,
        )
    for entry in server.salvaged:
        print(
            f"salvaged corrupt spool entry {entry['file']}: "
            f"{entry['reason']}",
            file=sys.stderr,
        )
    if server.metrics_port is not None:
        print(
            f"metrics on http://{server.host}:{server.metrics_port}/metrics",
            file=sys.stderr,
        )
    print(f"listening on {server.host}:{server.port}", flush=True)
    if args.ready_file:
        from pathlib import Path as _Path

        _Path(args.ready_file).write_text(f"{server.host} {server.port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    except RuntimeError as error:
        # e.g. no --join seed could be reached within the retry budget
        print(f"serve failed: {error}", file=sys.stderr)
        return 2
    finally:
        server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import (
        DeadlineExceeded,
        ServiceError,
        ServiceUnreachable,
        submit_trace,
    )
    from .service.protocol import WireError

    trace = _load(args.trace)
    names = [n.strip() for n in args.analysis.split(",") if n.strip()]
    if not names:
        print("--analysis needs at least one name", file=sys.stderr)
        return 2
    try:
        if args.nodes:
            # Ring-aware routing across a cluster of serve nodes.
            from .cluster import ClusterClient

            client = ClusterClient(
                [a.strip() for a in args.nodes.split(",") if a.strip()]
            )
            doc = client.submit_trace(
                iter(trace),
                names,
                name=getattr(trace, "name", None) or "trace",
                batch=args.batch,
                encoding=args.encoding,
                packed=args.packed,
                session_id=args.session_id,
                resume=args.resume,
                stop_after=args.stop_after,
                checkpoint=args.stop_after is not None,
                deadline=args.deadline,
            )
        else:
            doc = submit_trace(
                args.host,
                args.port,
                iter(trace),
                names,
                name=getattr(trace, "name", None) or "trace",
                batch=args.batch,
                encoding=args.encoding,
                packed=args.packed,
                session_id=args.session_id,
                resume=args.resume,
                lenient=args.lenient,
                stop_after=args.stop_after,
                checkpoint=args.stop_after is not None,
                deadline=args.deadline,
            )
    except ServiceUnreachable:
        print(
            f"no service at {args.host}:{args.port} "
            "(is 'repro serve' running?)",
            file=sys.stderr,
        )
        return 3
    except DeadlineExceeded:
        print(
            f"deadline of {args.deadline:g}s expired before the report "
            "arrived; the session may still be resumable with --resume",
            file=sys.stderr,
        )
        return 4
    except (ServiceError, WireError, OSError) as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 2
    if doc.get("open"):
        # --stop-after: the stream was cut on purpose; report position.
        print(
            f"session {doc['session']} checkpointed and left open "
            f"at position {doc['position']}"
        )
        return 0
    doc["trace"]["path"] = args.trace  # the server never saw the path
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        for entry in doc["analyses"]:
            print(f"[{entry['analysis']}] {entry['summary']}")
    if doc.get("service", {}).get("restarted_from_zero"):
        # A lenient resume found nothing recoverable and the whole
        # stream was re-sent. The report is still correct, but the
        # durability loss must never be silent.
        print(
            f"warning: session {doc['service'].get('session')} restarted "
            "from zero (no recoverable checkpoint); the full stream was "
            "re-sent",
            file=sys.stderr,
        )
        return 5
    return {"pass": 0, "fail": 1, "undecided": 2}[doc["verdict"]]


def _cmd_service_stats(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError, ServiceUnreachable
    from .service.protocol import WireError

    try:
        with ServiceClient(args.host, args.port) as client:
            stats = client.stats()
    except ServiceUnreachable:
        # Same typed diagnostic + exit code as `repro submit`: an
        # unreachable node is an environment problem, not a stats one.
        print(
            f"no service at {args.host}:{args.port} "
            "(is 'repro serve' running?)",
            file=sys.stderr,
        )
        return 3
    except (ServiceError, WireError, OSError) as error:
        print(f"cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    if args.format == "prom":
        from .obs.metrics import stats_to_prom

        print(stats_to_prom(stats), end="")
    else:
        print(json.dumps(stats, indent=2))
    return 0


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    from .obs.experiment import ExperimentError, run_experiment

    analyses = [n.strip() for n in args.analyses.split(",") if n.strip()]
    if not analyses:
        print("--analyses needs at least one name", file=sys.stderr)
        return 2
    try:
        run = run_experiment(
            args.workload,
            seed=args.seed,
            scale=args.scale,
            analyses=analyses,
            packed=args.packed,
            out=args.out,
            run_id=args.run_id,
            wall_clock=args.wall_clock,
        )
    except (ExperimentError, KeyError, ValueError, OSError) as error:
        print(f"experiment failed: {error}", file=sys.stderr)
        return 2
    manifest = run["manifest"]
    print(f"run {run['run_id']} -> {run['run_dir']}")
    print(
        f"  verdict={manifest['verdict']} events={manifest['events']} "
        f"spans={manifest['spans']}"
    )
    print(f"  config_hash={run['experiment']['config_hash']}")
    if args.json:
        print(json.dumps(manifest, indent=2))
    return 0


def _cmd_experiment_show(args: argparse.Namespace) -> int:
    import os

    run_dir = args.run
    if not os.path.isdir(run_dir):
        # A bare run id resolves under --out, matching `experiment list`.
        candidate = os.path.join(args.out, run_dir)
        if os.path.isdir(candidate):
            run_dir = candidate
        else:
            print(f"not a run directory: {run_dir}", file=sys.stderr)
            return 2
    if args.spans:
        trace_path = os.path.join(run_dir, "trace.jsonl")
        try:
            with open(trace_path, "r", encoding="utf-8") as fh:
                sys.stdout.write(fh.read())
        except OSError as error:
            print(f"no span log: {error}", file=sys.stderr)
            return 2
        return 0
    md_path = os.path.join(run_dir, "report.md")
    try:
        with open(md_path, "r", encoding="utf-8") as fh:
            sys.stdout.write(fh.read())
    except OSError as error:
        print(f"no report: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_experiment_list(args: argparse.Namespace) -> int:
    import os

    root = args.out
    if not os.path.isdir(root):
        print(f"no runs under {root}")
        return 0
    rows = []
    for name in sorted(os.listdir(root)):
        manifest_path = os.path.join(root, name, "manifest.json")
        if not os.path.isfile(manifest_path):
            continue
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        rows.append((name, manifest))
    if not rows:
        print(f"no runs under {root}")
        return 0
    for name, manifest in rows:
        kind = manifest.get("kind", "experiment")
        print(
            f"{name}  kind={kind} verdict={manifest.get('verdict')} "
            f"config={str(manifest.get('config_hash'))[:12]}"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .obs.experiment import DiffError, diff_runs, format_diff

    try:
        diff = diff_runs(args.run_a, args.run_b)
    except DiffError as error:
        print(f"diff failed: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(format_diff(diff))
    return 0 if diff["equal"] else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults.plan import FaultPlanError, load_plan
    from .faults.scenarios import (
        SCENARIOS,
        run_plan_drill,
        run_scenario,
    )

    if args.cluster:
        return _cmd_chaos_cluster(args)
    if args.list:
        for name, fn in SCENARIOS.items():
            print(f"{name}: {' '.join((fn.__doc__ or '').split())}")
        return 0
    if not args.scenario and not args.plan:
        print(
            "pick --scenario NAME (see --list), --scenario all, "
            "or --plan FILE.json",
            file=sys.stderr,
        )
        return 2
    results = []
    if args.plan:
        try:
            plan = load_plan(args.plan)
        except FaultPlanError as error:
            print(f"bad fault plan: {error}", file=sys.stderr)
            return 2
        if args.seed is not None:
            plan.seed = args.seed
            plan.rng.seed(args.seed)
        results.append(run_plan_drill(plan, backend=args.backend))
    if args.scenario:
        seed = args.seed if args.seed is not None else 7207
        names = (
            list(SCENARIOS) if args.scenario == "all" else [args.scenario]
        )
        for name in names:
            if name not in SCENARIOS:
                print(
                    f"unknown scenario {name!r} "
                    f"(known: {', '.join(SCENARIOS)}, all)",
                    file=sys.stderr,
                )
                return 2
            results.append(run_scenario(name, seed=seed, backend=args.backend))
    if args.json:
        print(json.dumps([r.to_json() for r in results], indent=2))
    else:
        for result in results:
            mark = "ok" if result.ok else "FAIL"
            print(
                f"[{mark}] {result.name} (seed {result.seed}) -> "
                f"{result.outcome}: {result.detail}"
            )
            if not result.ok:
                for line in result.checks:
                    print(f"       {line}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_chaos_cluster(args: argparse.Namespace) -> int:
    """``repro chaos --cluster``: the netsim partition drill matrix."""
    from .faults.netsim import CLUSTER_SCENARIOS, run_cluster_scenario

    if args.list:
        for name, fn in CLUSTER_SCENARIOS.items():
            print(f"{name}: {' '.join((fn.__doc__ or '').split())}")
        return 0
    if args.plan:
        print(
            "--plan drives the single-node drill; the cluster matrix "
            "builds its own seeded partition schedules (--scenario "
            "NAME or all)",
            file=sys.stderr,
        )
        return 2
    seed = args.seed if args.seed is not None else 7207
    scenario = args.scenario or "all"
    names = (
        list(CLUSTER_SCENARIOS) if scenario == "all" else [scenario]
    )
    results = []
    for name in names:
        if name not in CLUSTER_SCENARIOS:
            print(
                f"unknown cluster scenario {name!r} "
                f"(known: {', '.join(CLUSTER_SCENARIOS)}, all)",
                file=sys.stderr,
            )
            return 2
        results.append(
            run_cluster_scenario(name, seed=seed, backend=args.backend)
        )
    if args.json:
        print(json.dumps([r.to_json() for r in results], indent=2))
    else:
        for result in results:
            mark = "ok" if result.ok else "FAIL"
            print(
                f"[{mark}] {result.name} (seed {result.seed}) -> "
                f"{result.outcome}: {result.detail} "
                f"[{len(result.injected)} faults injected]"
            )
            if not result.ok:
                for line in result.checks:
                    print(f"       {line}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_metainfo(args: argparse.Namespace) -> int:
    info = metainfo(_load(args.trace))
    print(info)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    case = get_case(args.benchmark)
    trace = case.generate(seed=args.seed, scale=args.scale)
    if args.binary or str(args.output).endswith(".rtb"):
        save_binary(trace, args.output)
    else:
        save_trace(trace, args.output)
    print(f"wrote {len(trace)} events to {args.output}")
    return 0


def _table_command(args: argparse.Namespace, cases) -> int:
    results = run_table(
        cases, seed=args.seed, scale=args.scale, timeout=args.timeout,
        jobs=args.jobs,
    )
    print(format_table(results, title=f"Measured (scale={args.scale})"))
    print()
    print(format_comparison(results, title="Paper vs. measured"))
    mismatches = [r for r in results if not r.verdicts_agree]
    if mismatches:
        print(
            "verdict disagreement on: "
            + ", ".join(r.case.name for r in mismatches),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Reuses the perf harness's own argv parsing so the flags of
    # ``repro bench`` and ``benchmarks/perf_harness.py`` cannot drift.
    from .bench.perf import main as bench_main

    argv = [
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--repeats", str(args.repeats),
        "--algorithm", args.algorithm,
        "--tables", args.tables,
        "--jobs", str(args.jobs),
        "-o", args.output,
    ]
    if args.no_scaling:
        argv.append("--no-scaling")
    if args.no_session:
        argv.append("--no-session")
    if args.no_ingest:
        argv.append("--no-ingest")
    if args.no_service:
        argv.append("--no-service")
    if args.no_cluster:
        argv.append("--no-cluster")
    if args.check:
        argv.append("--check")
    if args.no_runs_dir:
        argv.append("--no-runs-dir")
    elif args.runs_dir:
        argv.extend(["--runs-dir", args.runs_dir])
    return bench_main(argv)


def _cmd_scaling(args: argparse.Namespace) -> int:
    case = get_case(args.benchmark)
    sizes = [int(s) for s in args.sizes.split(",")]
    points = run_scaling(case, sizes, seed=args.seed, timeout=args.timeout)
    print(format_scaling(points, title=f"Scaling on {case.name!r}"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    result = _run_session(args, ["explain"])
    report = result.reports["explain"]
    if args.json:
        _emit_json(result)
        return 0 if report.ok else 1
    explanation = report.native
    if explanation is None:
        print("conflict serializable: nothing to explain")
        return 0
    print(explanation.render())
    return 1


def _cmd_races(args: argparse.Namespace) -> int:
    result = _run_session(args, ["races"])
    report = result.reports["races"]
    if args.json:
        _emit_json(result)
        return 0 if report.ok else 1
    races = report.native
    if not races:
        print("no happens-before data races")
        return 0
    for race in races:
        print(race)
    print(f"{len(races)} race(s) on {len({r.variable for r in races})} variable(s)")
    return 1


def _cmd_causal(args: argparse.Namespace) -> int:
    result = _run_session(args, ["causal"])
    report = result.reports["causal"]
    if args.json:
        _emit_json(result)
        return 0 if report.ok else 1
    print(report.native)
    return 0 if report.ok else 1


def _cmd_algorithms(args: argparse.Namespace) -> int:
    if args.checkers:
        for name in checker_names():
            print(name)
        return 0
    from .api.registry import analysis_specs

    for spec in analysis_specs():
        print(f"{spec.name:<18} [{spec.kind}] {spec.summary}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .api.analysis import ProfileAnalysis

    result = _run_session(args, [ProfileAnalysis(top=args.top)])
    report = result.reports["profile"]
    if args.json:
        _emit_json(result)
        return 0
    print(format_profile(report.native, top=args.top))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    if args.events:
        dot = event_graph_dot(trace)
    else:
        dot = transaction_graph_dot(trace, include_unary=args.include_unary)
    if args.output:
        save_dot(dot, args.output)
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from .sim import trace_zoo

    if args.name is None:
        for specimen in trace_zoo.all_specimens():
            verdict = "✓" if specimen.conflict_serializable else "✗"
            print(f"{verdict} {specimen.name:<22} {specimen.description}")
        return 0
    try:
        specimen = trace_zoo.get(args.name)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    trace = specimen.trace()
    if args.output:
        save_trace(trace, args.output)
        print(f"wrote {len(trace)} events to {args.output}")
    elif args.render:
        print(render_with_verdict(trace))
    else:
        for event in trace:
            print(event)
    return 0


def _cmd_violations(args: argparse.Namespace) -> int:
    analysis = CheckerAnalysis(
        args.algorithm,
        mode="report_all",
        dedupe=args.dedupe,
        limit=args.limit,
    )
    result = _run_session(args, [analysis])
    report = result.reports[args.algorithm]
    if args.json:
        _emit_json(result)
        return 0 if report.ok else 1
    violations = report.native
    for violation in violations:
        print(violation)
    print(f"{len(violations)} violation report(s)")
    return 0 if not violations else 1


def _cmd_atomizer(args: argparse.Namespace) -> int:
    warnings = atomizer_warnings(_load(args.trace))
    for warning in warnings:
        print(warning)
    print(f"{len(warnings)} reduction warning(s)")
    return 0 if not warnings else 1


def _cmd_lockset(args: argparse.Namespace) -> int:
    result = _run_session(args, ["lockset"])
    report = result.reports["lockset"]
    if args.json:
        _emit_json(result)
        return 0 if report.ok else 1
    for warning in report.native.warnings:
        print(warning)
    print(f"{len(report.native.warnings)} lockset warning(s)")
    return 0 if report.ok else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    try:
        minimized = minimize_violation(trace, algorithm=args.algorithm)
    except ValueError as error:
        print(f"cannot minimize: {error}", file=sys.stderr)
        return 2
    print(
        f"minimized {len(trace)} -> {len(minimized)} events "
        f"({len(trace) - len(minimized)} removed)"
    )
    if args.output:
        save_trace(minimized, args.output)
        print(f"wrote {args.output}")
    else:
        print(render_with_verdict(minimized, algorithm=args.algorithm))
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    points = sample_state_growth(
        _load(args.trace), algorithm=args.algorithm, samples=args.samples
    )
    print(f"[{args.algorithm}] state growth:")
    print(format_growth(points))
    return 0


def _cmd_inferspec(args: argparse.Namespace) -> int:
    from .spec.atomicity_spec import save_spec

    trace = _load(args.trace)
    try:
        inferred = infer_spec(trace, algorithm=args.algorithm)
    except InferenceError as error:
        print(f"inference failed: {error}", file=sys.stderr)
        return 2
    print(inferred)
    for method, violation in inferred.removed:
        print(f"  refuted {method}: {violation}")
    if args.output:
        save_spec(inferred.spec, args.output)
        print(f"wrote spec to {args.output}")
    return 0 if not inferred.removed else 1


def _cmd_serialize(args: argparse.Namespace) -> int:
    from .analysis.serial_witness import serial_witness

    trace = _load(args.trace)
    witness = serial_witness(trace)
    if witness is None:
        print("not conflict serializable: no serial witness", file=sys.stderr)
        return 1
    if args.output:
        save_trace(witness, args.output)
        print(f"wrote equivalent serial execution to {args.output}")
    else:
        for event in witness:
            print(event)
    return 0


def _cmd_viewserial(args: argparse.Namespace) -> int:
    result = _run_session(args, ["viewserial"])
    report = result.reports["viewserial"]
    if args.json:
        _emit_json(result)
        return {True: 0, False: 1, None: 2}[report.verdict]
    if report.verdict is None:
        print(report.summary, file=sys.stderr)
        return 2
    print(report.summary)
    return 0 if report.verdict else 1


def _add_session_flags(parser: argparse.ArgumentParser) -> None:
    """The common surface every session-backed verb shares."""
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-report/1 JSON document instead of text",
    )
    parser.add_argument(
        "--packed",
        action="store_true",
        help="compile the trace once and run the packed fast path",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the analyses across N worker processes "
        "(0 = one per CPU; needs 2+ analyses to matter)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AeroDrome reproduction: atomicity checking on traces",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check",
        help="run one or more analyses over a trace (one ingest)",
        epilog=_EPILOG,
    )
    check.add_argument("trace", help="path to a .std trace file")
    check.add_argument(
        "--analysis",
        metavar="A,B,C",
        help="comma-separated registered analyses to co-run on one sweep "
        f"(any of: {', '.join(available_analyses())})",
    )
    check.add_argument(
        "--algorithm",
        default=None,
        choices=checker_names(),
        help="deprecated alias: checker to run, default aerodrome "
        "(use --analysis; given together, both run)",
    )
    check.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the well-formedness check",
    )
    _add_session_flags(check)
    check.set_defaults(func=_cmd_check)

    pack_cmd = sub.add_parser(
        "pack",
        help="compile a trace to the zero-copy repro-packed/1 column store",
        epilog="Check the result directly: repro check file.rpt "
        "(formats are sniffed by magic bytes). Spec in docs/PERF.md.",
    )
    pack_cmd.add_argument("trace", help="source trace (.std text or .rtb binary)")
    pack_cmd.add_argument(
        "-o", "--output", required=True,
        help="destination .rpt file (mmap-loadable, pack once analyze many)",
    )
    pack_cmd.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the one-time well-formedness check "
        "(checking .rpt files later never re-validates)",
    )
    pack_cmd.set_defaults(func=_cmd_pack)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant streaming analysis service",
        epilog="Wire format, lifecycle and recovery semantics are "
        "documented in docs/SERVICE.md. Stream a trace to a running "
        "server with 'repro submit'.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7207,
        help="TCP port (0 = pick a free one; printed on startup)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="share-nothing worker shards sessions hash across",
    )
    serve.add_argument(
        "--workers", choices=("thread", "process"), default="thread",
        help="shard workers: threads (default; right for 1-CPU hosts) "
        "or one OS process per shard for parallel ingest",
    )
    serve.add_argument(
        "--spool", default=None, metavar="DIR",
        help="checkpoint spool directory: enables durable recovery "
        "(restart resumes every open session from its last checkpoint)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="auto-checkpoint each session every N events (with --spool)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="per-shard inbox bound in batches (full = BUSY backpressure)",
    )
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write 'host port' here once listening (for scripts/CI)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-connection read timeout: a stalled client is dropped "
        "with a typed ERROR instead of pinning a handler thread "
        "(0 disables)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "async"), default="thread",
        help="connection front end: one handler thread per connection "
        "(default) or a single-threaded selectors event loop that "
        "holds thousands of idle sessions on one thread",
    )
    serve.add_argument(
        "--cluster", action="store_true",
        help="serve as a cluster node (a ring of one until peers join)",
    )
    serve.add_argument(
        "--join", action="append", default=None, metavar="HOST:PORT",
        help="join the cluster through this peer (repeatable; implies "
        "--cluster)",
    )
    serve.add_argument(
        "--node-id", default=None, metavar="ID",
        help="stable cluster node id (default: the advertised host:port)",
    )
    serve.add_argument(
        "--advertise", default=None, metavar="HOST:PORT",
        help="address peers and clients reach this node at, when it "
        "differs from the bind address",
    )
    serve.add_argument(
        "--vnodes", type=int, default=None, metavar="N",
        help="virtual ring points per node (must match across the "
        "cluster; default 64)",
    )
    serve.add_argument(
        "--gossip-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between membership gossip / rebalance ticks",
    )
    serve.add_argument(
        "--suspect-after", type=float, default=None, metavar="SECONDS",
        help="declare a silent peer dead after this long (default 4 "
        "gossip intervals) — the failover trigger",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="max inflight EVENTS batches per session before the "
        "router sheds the tenant with a paced BUSY (default: no quota)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve Prometheus text on "
        "http://HOST:PORT/metrics (0 = pick a free one; the metric "
        "catalog is documented in docs/OBSERVABILITY.md)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="stream a trace to a running service and print the report",
        epilog="Exit codes follow the session verdict like 'repro check' "
        "(0 pass, 1 fail, 2 undecided); 3 = the server is unreachable, "
        "4 = --deadline expired, 5 = the report is correct but the "
        "session restarted from zero (a lenient resume found no "
        "recoverable checkpoint). See docs/SERVICE.md.",
    )
    submit.add_argument("trace", help="trace file (.std/.rtb/.rpt)")
    submit.add_argument(
        "--analysis", default="aerodrome", metavar="A,B,C",
        help="analyses the remote session runs "
        f"(any of: {', '.join(available_analyses())})",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7207)
    submit.add_argument(
        "--nodes", default=None, metavar="H:P,H:P,...",
        help="cluster seed addresses: route the session to its ring "
        "owner, follow REDIRECTs, and survive node loss (overrides "
        "--host/--port)",
    )
    submit.add_argument(
        "--batch", type=int, default=512, help="events per EVENTS frame"
    )
    submit.add_argument(
        "--encoding", choices=("text", "delta"), default="text",
        help="wire encoding: .std text lines or packed column deltas",
    )
    submit.add_argument(
        "--packed", action="store_true",
        help="analyze on the server's packed dispatch path",
    )
    submit.add_argument(
        "--session-id", default=None,
        help="pin the session id (required to resume after a crash)",
    )
    submit.add_argument(
        "--resume", action="store_true",
        help="resume a checkpointed session: skip the events the "
        "server already has and stream the remainder",
    )
    submit.add_argument(
        "--lenient", action="store_true",
        help="soften --resume: when the server has no recoverable "
        "checkpoint, restart the session from zero and re-send the "
        "whole stream (warns and exits 5) instead of failing",
    )
    submit.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="send only the first N events, checkpoint, and leave the "
        "session open (crash-drill half of the recovery story)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole submission (connects, "
        "BUSY backoff and reconnects included); expiry exits 4",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="emit the final repro-report/1 JSON document",
    )
    submit.set_defaults(func=_cmd_submit)

    service_stats = sub.add_parser(
        "service-stats",
        help="print a running service's aggregated shard metrics",
        epilog="The JSON document is versioned (schema repro-stats/1); "
        "--format prom renders the same snapshot as Prometheus text. "
        "Exit 3 = the server is unreachable (same as 'repro submit').",
    )
    service_stats.add_argument("--host", default="127.0.0.1")
    service_stats.add_argument("--port", type=int, default=7207)
    service_stats.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="output form: repro-stats/1 JSON (default) or Prometheus "
        "text exposition",
    )
    service_stats.set_defaults(func=_cmd_service_stats)

    experiment = sub.add_parser(
        "experiment",
        help="run locked, hash-addressed experiments (see "
        "docs/OBSERVABILITY.md)",
    )
    experiment_sub = experiment.add_subparsers(
        dest="experiment_command", required=True
    )
    exp_run = experiment_sub.add_parser(
        "run",
        help="lock workload/scale/seed/analyses into a content-hashed "
        "run directory (experiment.json + manifest.json + report.json "
        "+ report.md + trace.jsonl)",
    )
    exp_run.add_argument(
        "--workload", required=True,
        help="benchmark case name (see 'repro bench' tables)",
    )
    exp_run.add_argument("--seed", type=int, default=0)
    exp_run.add_argument("--scale", type=float, default=0.1)
    exp_run.add_argument(
        "--analyses", default="aerodrome",
        help="comma-separated analysis names (default: aerodrome)",
    )
    exp_run.add_argument(
        "--packed", action="store_true",
        help="drive the packed dispatch sweep",
    )
    exp_run.add_argument(
        "--out", default="runs", metavar="DIR",
        help="root directory for run-id directories (default: runs/)",
    )
    exp_run.add_argument(
        "--run-id", default=None,
        help="override the derived run id (default: "
        "<workload>-s<seed>-<hash8>)",
    )
    exp_run.add_argument(
        "--wall-clock", action="store_true",
        help="use real monotonic span times instead of the "
        "deterministic tick clock (trace.jsonl stops being "
        "byte-reproducible)",
    )
    exp_run.add_argument(
        "--json", action="store_true",
        help="also print the manifest JSON",
    )
    exp_run.set_defaults(func=_cmd_experiment_run)
    exp_show = experiment_sub.add_parser(
        "show", help="print a run's report.md (or its span log)",
    )
    exp_show.add_argument("run", help="run directory (or a run id under --out)")
    exp_show.add_argument(
        "--spans", action="store_true",
        help="print trace.jsonl instead of report.md",
    )
    exp_show.add_argument("--out", default="runs", metavar="DIR")
    exp_show.set_defaults(func=_cmd_experiment_show)
    exp_list = experiment_sub.add_parser(
        "list", help="list run directories under --out",
    )
    exp_list.add_argument("--out", default="runs", metavar="DIR")
    exp_list.set_defaults(func=_cmd_experiment_list)

    diff_cmd = sub.add_parser(
        "diff",
        help="compare two experiment/bench runs "
        "(exit 0 = agree, 1 = differ, 2 = error)",
        epilog="RUN arguments are run directories from 'repro "
        "experiment run' / 'repro bench', or legacy flat "
        "BENCH_PR*.json artifacts (schemas repro-bench/1..5). "
        "Verdicts, violation indices, agreement flags and locked "
        "config gate the diff; wall-clock numbers are reported as "
        "deltas only (1-CPU CI gates on agreement, never speed).",
    )
    diff_cmd.add_argument("run_a", help="baseline run directory or artifact")
    diff_cmd.add_argument("run_b", help="candidate run directory or artifact")
    diff_cmd.add_argument(
        "--json", action="store_true",
        help="emit the structured diff document",
    )
    diff_cmd.set_defaults(func=_cmd_diff)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection drills against the service",
        epilog="Each drill arms a deterministic fault plan against an "
        "in-process service and checks the pinned outcome: either the "
        "stream heals (report equals the offline run) or the failure "
        "surfaces as a documented typed error. The failure-mode matrix "
        "and the repro-faults/1 plan schema are in docs/SERVICE.md.",
    )
    chaos.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run one named drill from the matrix, or 'all'",
    )
    chaos.add_argument(
        "--plan", default=None, metavar="FILE",
        help="run the generic drill under a repro-faults/1 JSON plan",
    )
    chaos.add_argument(
        "--seed", type=int, default=None,
        help="fault-plan seed (default 7207; same seed, same faults)",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list the scenario matrix"
    )
    chaos.add_argument(
        "--cluster", action="store_true",
        help="run the netsim cluster matrix instead: an N-node ring "
        "under simulated time with a seeded schedule of partitions, "
        "gossip chaos, gray failure and overload (same seed, same "
        "fault trace)",
    )
    chaos.add_argument(
        "--backend", choices=("thread", "async"), default="thread",
        help="server front end the drills stand up (the fault sites "
        "live in the shared connection core, so the same seeded plan "
        "exercises either backend unchanged)",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit the drill results as JSON",
    )
    chaos.set_defaults(func=_cmd_chaos)

    meta = sub.add_parser("metainfo", help="print trace characteristics")
    meta.add_argument("trace")
    meta.set_defaults(func=_cmd_metainfo)

    gen = sub.add_parser("generate", help="generate a benchmark analog trace")
    gen.add_argument("benchmark", choices=sorted(c.name for c in ALL_CASES))
    gen.add_argument("-o", "--output", required=True)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument(
        "--binary",
        action="store_true",
        help="write the compact binary format instead of .std text",
    )
    gen.set_defaults(func=_cmd_generate)

    for table_name, cases in (("table1", TABLE1), ("table2", TABLE2)):
        table = sub.add_parser(
            table_name, help=f"regenerate the paper's {table_name}"
        )
        table.add_argument("--seed", type=int, default=7)
        table.add_argument("--scale", type=float, default=1.0)
        table.add_argument(
            "--timeout",
            type=float,
            default=20.0,
            help="per-run timeout in seconds (paper: 10 hours)",
        )
        table.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="fan table rows across N worker processes (0 = one per CPU)",
        )
        table.set_defaults(func=_table_command, cases=cases)

    bench = sub.add_parser(
        "bench",
        help="throughput + ingest + parallel + service + cluster benchmark "
        "(writes BENCH_PR8.json)",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--algorithm", default="aerodrome")
    bench.add_argument("--tables", default="1,2")
    bench.add_argument("--no-scaling", action="store_true")
    bench.add_argument(
        "--no-session",
        action="store_true",
        help="skip the one-pass vs N-pass session comparison",
    )
    bench.add_argument(
        "--no-ingest",
        action="store_true",
        help="skip the cold-start ingest split (parse/pack/load timings)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="workers for the serial-vs-parallel session column "
        "(0 or 1 skips it; default 2)",
    )
    bench.add_argument(
        "--no-service",
        action="store_true",
        help="skip the streamed-vs-offline service block",
    )
    bench.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the 1-node vs 3-node ring comparison",
    )
    bench.add_argument("-o", "--output", default="BENCH_PR8.json")
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every path agrees everywhere "
        "(packed/string, reloaded traces, parallel and streamed sessions)",
    )
    bench.add_argument(
        "--runs-dir", default="runs", metavar="DIR",
        help="also mirror the artifact into a run-id directory under "
        "DIR ('repro diff'-able; default: runs/)",
    )
    bench.add_argument(
        "--no-runs-dir", action="store_true",
        help="write only the flat -o artifact",
    )
    bench.set_defaults(func=_cmd_bench)

    scaling = sub.add_parser("scaling", help="linear-vs-cubic scaling sweep")
    scaling.add_argument("--benchmark", default="raytracer")
    scaling.add_argument(
        "--sizes", default="4000,8000,16000,32000,64000"
    )
    scaling.add_argument("--seed", type=int, default=7)
    scaling.add_argument("--timeout", type=float, default=60.0)
    scaling.set_defaults(func=_cmd_scaling)

    explain_cmd = sub.add_parser(
        "explain", help="extract a witness cycle for a violating trace"
    )
    explain_cmd.add_argument("trace")
    _add_session_flags(explain_cmd)
    explain_cmd.set_defaults(func=_cmd_explain)

    races_cmd = sub.add_parser(
        "races", help="happens-before data race detection (FastTrack)"
    )
    races_cmd.add_argument("trace")
    _add_session_flags(races_cmd)
    races_cmd.set_defaults(func=_cmd_races)

    causal_cmd = sub.add_parser(
        "causal", help="per-transaction causal atomicity report"
    )
    causal_cmd.add_argument("trace")
    _add_session_flags(causal_cmd)
    causal_cmd.set_defaults(func=_cmd_causal)

    algos = sub.add_parser(
        "algorithms", help="list registered analyses (checkers and more)"
    )
    algos.add_argument(
        "--checkers",
        action="store_true",
        help="only the StreamingChecker algorithm names, one per line",
    )
    algos.set_defaults(func=_cmd_algorithms)

    profile_cmd = sub.add_parser("profile", help="workload shape report")
    profile_cmd.add_argument("trace")
    profile_cmd.add_argument("--top", type=int, default=10,
                             help="hot variables/locks to list")
    _add_session_flags(profile_cmd)
    profile_cmd.set_defaults(func=_cmd_profile)

    dot_cmd = sub.add_parser("dot", help="Graphviz export of a trace")
    dot_cmd.add_argument("trace")
    dot_cmd.add_argument("-o", "--output", help="write DOT here (else stdout)")
    dot_cmd.add_argument(
        "--events",
        action="store_true",
        help="event-level conflict graph instead of the transaction graph",
    )
    dot_cmd.add_argument(
        "--include-unary",
        action="store_true",
        help="draw unary transactions too",
    )
    dot_cmd.set_defaults(func=_cmd_dot)

    zoo_cmd = sub.add_parser("zoo", help="list or write example traces")
    zoo_cmd.add_argument("name", nargs="?", help="specimen to print/write")
    zoo_cmd.add_argument("-o", "--output", help="write the specimen as .std")
    zoo_cmd.add_argument(
        "--render",
        action="store_true",
        help="draw the specimen in the paper's column layout",
    )
    zoo_cmd.set_defaults(func=_cmd_zoo)

    memory_cmd = sub.add_parser(
        "memory", help="sample a checker's state growth along a trace"
    )
    memory_cmd.add_argument("trace")
    memory_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=checker_names()
    )
    memory_cmd.add_argument("--samples", type=int, default=10)
    memory_cmd.set_defaults(func=_cmd_memory)

    violations_cmd = sub.add_parser(
        "violations", help="report-and-continue: list every violation"
    )
    violations_cmd.add_argument("trace")
    violations_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=checker_names()
    )
    violations_cmd.add_argument("--limit", type=int, default=None)
    violations_cmd.add_argument("--dedupe", action="store_true")
    _add_session_flags(violations_cmd)
    violations_cmd.set_defaults(func=_cmd_violations)

    atomizer_cmd = sub.add_parser(
        "atomizer", help="Lipton-reduction warnings (unsound baseline)"
    )
    atomizer_cmd.add_argument("trace")
    atomizer_cmd.set_defaults(func=_cmd_atomizer)

    lockset_cmd = sub.add_parser(
        "lockset", help="Eraser lockset race warnings"
    )
    lockset_cmd.add_argument("trace")
    _add_session_flags(lockset_cmd)
    lockset_cmd.set_defaults(func=_cmd_lockset)

    viewserial_cmd = sub.add_parser(
        "viewserial", help="exact view-serializability (small traces)"
    )
    viewserial_cmd.add_argument("trace")
    _add_session_flags(viewserial_cmd)
    viewserial_cmd.set_defaults(func=_cmd_viewserial)

    serialize_cmd = sub.add_parser(
        "serialize", help="emit an equivalent serial execution"
    )
    serialize_cmd.add_argument("trace")
    serialize_cmd.add_argument("-o", "--output")
    serialize_cmd.set_defaults(func=_cmd_serialize)

    inferspec_cmd = sub.add_parser(
        "inferspec", help="infer a trace-consistent atomicity spec"
    )
    inferspec_cmd.add_argument("trace", help="raw trace with labeled markers")
    inferspec_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=checker_names()
    )
    inferspec_cmd.add_argument("-o", "--output", help="write the spec file")
    inferspec_cmd.set_defaults(func=_cmd_inferspec)

    minimize_cmd = sub.add_parser(
        "minimize", help="shrink a violating trace to a 1-minimal core"
    )
    minimize_cmd.add_argument("trace")
    minimize_cmd.add_argument(
        "--algorithm", default="aerodrome", choices=checker_names()
    )
    minimize_cmd.add_argument("-o", "--output", help="write the core as .std")
    minimize_cmd.set_defaults(func=_cmd_minimize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if hasattr(args, "cases"):
        return args.func(args, args.cases)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
