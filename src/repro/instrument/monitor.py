"""Online atomicity monitoring of real Python threads.

The paper's deployment model runs the analysis *while the program
executes* (RoadRunner hosts the checker in-process). The
:class:`TraceRecorder` captures live events; this module closes the
loop by feeding each recorded event straight into a streaming checker
under the recorder's mutex — violations surface while the offending
threads are still alive, not after a post-mortem replay.

Violation policies:

* ``"record"`` (default) — append to :attr:`LiveMonitor.violations`
  and keep monitoring (report-and-continue, see
  :mod:`repro.core.multi` for the semantics of reports after the
  first);
* ``"raise"`` — raise :class:`AtomicityViolationError` *in the thread
  whose operation closed the cycle*, at the offending call site. The
  monitor keeps running for the other threads; the failed thread's
  exception propagates through its target like any other error;
* a callable — invoked with the :class:`Violation` (still under the
  recorder mutex: keep it fast, don't touch instrumented state inside).

The monitor inherits every recorder facility (``shared``, ``lock``,
``atomic``, ``spawn``, ``join``) so instrumented code is oblivious to
whether it is being recorded or actively policed::

    monitor = LiveMonitor(policy="record")
    x = monitor.shared("x")
    with monitor.atomic("update"):
        x.set(x.get() + 1)
    assert monitor.violations == []
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..core.checker import StreamingChecker
from ..core.violations import AtomicityViolationError, Violation
from ..trace.events import Event, Op
from .recorder import TraceRecorder

#: Type accepted by the ``policy`` argument.
Policy = Union[str, Callable[[Violation], None]]


class LiveMonitor(TraceRecorder):
    """A :class:`TraceRecorder` that checks events as they happen.

    Args:
        algorithm: Registry name of the streaming checker to host.
        policy: ``"record"``, ``"raise"``, or a callable — see the
            module docstring.
        name: Trace name (as for :class:`TraceRecorder`).
        checker: Host this checker-shaped backend instead of
            constructing one from ``algorithm``. Anything with the
            ``process(event) -> Optional[Violation]`` /
            ``violation`` surface works — notably
            :class:`repro.service.client.RemoteChecker`, which ships
            the events to a remote analysis service (violations then
            surface at its batch boundaries rather than instantly).
    """

    def __init__(
        self,
        algorithm: str = "aerodrome",
        policy: Policy = "record",
        name: str = "monitored",
        checker: Optional[StreamingChecker] = None,
    ) -> None:
        super().__init__(name=name)
        if isinstance(policy, str) and policy not in ("record", "raise"):
            raise ValueError(
                f"policy must be 'record', 'raise' or a callable, got {policy!r}"
            )
        self.policy = policy
        if checker is None:
            from ..api.registry import make_checker

            checker = make_checker(algorithm)
        self.checker: StreamingChecker = checker
        self.algorithm = getattr(checker, "algorithm", algorithm)
        self.violations: List[Violation] = []

    # -- the hook ----------------------------------------------------------

    def _record(self, op: Op, target: Optional[str]) -> None:
        # Caller holds self._mutex (TraceRecorder contract), which also
        # serializes the checker: the analysis sees events in exactly
        # the order the trace records them.
        super()._record(op, target)
        event = self._trace[len(self._trace) - 1]
        violation = self.checker.process(event)
        if violation is None:
            return
        self.checker.violation = None  # keep monitoring
        self.violations.append(violation)
        if callable(self.policy):
            self.policy(violation)
        elif self.policy == "raise":
            raise AtomicityViolationError(violation)

    # -- conveniences --------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None


def monitored_run(
    body: Callable[["LiveMonitor"], None],
    algorithm: str = "aerodrome",
) -> LiveMonitor:
    """Run ``body(monitor)`` under a fresh recording monitor.

    A tiny harness for tests and examples::

        def scenario(monitor):
            x = monitor.shared("x")
            ...

        monitor = monitored_run(scenario)
        assert monitor.clean
    """
    monitor = LiveMonitor(algorithm=algorithm)
    body(monitor)
    return monitor
