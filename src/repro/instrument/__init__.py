"""Live instrumentation for real Python threads (RoadRunner analog)."""

from .monitor import LiveMonitor, monitored_run
from .recorder import SharedVar, TracedLock, TraceRecorder

__all__ = [
    "TraceRecorder",
    "SharedVar",
    "TracedLock",
    "LiveMonitor",
    "monitored_run",
]
