"""Live trace recording for real Python threads.

The paper logs traces from Java programs via RoadRunner's load-time
instrumentation. This module is the Python analog a downstream user
would actually adopt: wrap your shared state in :class:`SharedVar`, your
locks in :class:`TracedLock`, mark intended-atomic regions with
:meth:`TraceRecorder.atomic`, and spawn threads through the recorder —
every run of your *real threaded code* yields a well-formed trace ready
for ``check_trace``.

Event ordering is made consistent with the actual synchronization:

* variable accesses take the recorder's internal mutex around
  (access + log), so the logged order of conflicting accesses is the
  real one;
* lock acquires log *after* the OS-level acquire and releases log
  *before* the OS-level release, so a ``rel(l)`` always precedes the
  next ``acq(l)`` in the trace;
* forks log before ``Thread.start`` and joins log after ``Thread.join``
  returns, satisfying the paper's fork/join well-formedness rules.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..trace.events import Event, Op
from ..trace.trace import Trace


class TraceRecorder:
    """Collects events from live threads into a well-formed trace."""

    def __init__(self, name: str = "recorded") -> None:
        self._mutex = threading.Lock()
        self._trace = Trace(name=name)
        self._thread_names: Dict[int, str] = {}
        self._next_thread = 0

    # -- thread naming -----------------------------------------------------

    def _register_current(self) -> str:
        ident = threading.get_ident()
        name = self._thread_names.get(ident)
        if name is None:
            name = f"T{self._next_thread}"
            self._next_thread += 1
            self._thread_names[ident] = name
        return name

    def current_thread_name(self) -> str:
        """The trace name of the calling thread (registering it if new)."""
        with self._mutex:
            return self._register_current()

    # -- recording ---------------------------------------------------------

    def _record(self, op: Op, target: Optional[str]) -> None:
        # Caller must hold self._mutex.
        thread = self._register_current()
        self._trace.append(Event(thread, op, target))

    def record(self, op: Op, target: Optional[str] = None) -> None:
        """Log one event for the calling thread (thread-safe)."""
        with self._mutex:
            self._record(op, target)

    # -- structured helpers ------------------------------------------------

    @contextmanager
    def atomic(self, label: Optional[str] = None) -> Iterator[None]:
        """Mark a region the specification intends to be atomic."""
        self.record(Op.BEGIN, label)
        try:
            yield
        finally:
            self.record(Op.END, label)

    def shared(self, name: str, initial: Any = None) -> "SharedVar":
        """Create an instrumented shared memory location."""
        return SharedVar(self, name, initial)

    def lock(self, name: str) -> "TracedLock":
        """Create an instrumented re-entrant lock."""
        return TracedLock(self, name)

    def spawn(
        self,
        target: Callable[..., Any],
        *args: Any,
        thread_name: Optional[str] = None,
    ) -> threading.Thread:
        """Start a thread, logging the fork edge first.

        The child's trace name is assigned by the parent (so the fork
        event can reference it) and claimed by the child before its
        first instruction; OS thread-id reuse is therefore harmless.
        """
        with self._mutex:
            parent = self._register_current()
            child = f"T{self._next_thread}"
            self._next_thread += 1
            self._trace.append(Event(parent, Op.FORK, child))

        def runner() -> None:
            ident = threading.get_ident()
            with self._mutex:
                self._thread_names[ident] = child
            try:
                target(*args)
            finally:
                # Drop the mapping so a reused OS thread id cannot be
                # mistaken for this (now finished) thread.
                with self._mutex:
                    self._thread_names.pop(ident, None)

        thread = threading.Thread(target=runner, name=thread_name)
        thread._repro_trace_name = child  # type: ignore[attr-defined]
        thread.start()
        return thread

    def join(self, thread: threading.Thread) -> None:
        """Join a spawned thread, logging the join edge afterwards."""
        child = getattr(thread, "_repro_trace_name", None)
        if child is None:
            raise ValueError("thread was not spawned through this recorder")
        thread.join()
        with self._mutex:
            parent = self._register_current()
            self._trace.append(Event(parent, Op.JOIN, child))

    # -- results -----------------------------------------------------------

    def trace(self) -> Trace:
        """A snapshot copy of everything recorded so far."""
        with self._mutex:
            snapshot = Trace(name=self._trace.name)
            for event in self._trace.events:
                snapshot.append(Event(event.thread, event.op, event.target))
            return snapshot

    def __len__(self) -> int:
        with self._mutex:
            return len(self._trace)


class SharedVar:
    """An instrumented shared memory location.

    Reads and writes take the recorder's mutex around access + log, so
    the trace reflects the true order of conflicting accesses.
    """

    def __init__(self, recorder: TraceRecorder, name: str, initial: Any = None):
        self._recorder = recorder
        self.name = name
        self._value = initial

    def get(self) -> Any:
        recorder = self._recorder
        with recorder._mutex:
            recorder._record(Op.READ, self.name)
            return self._value

    def set(self, value: Any) -> None:
        recorder = self._recorder
        with recorder._mutex:
            recorder._record(Op.WRITE, self.name)
            self._value = value

    value = property(get, set, doc="Instrumented access to the stored value.")


class TracedLock:
    """An instrumented re-entrant lock usable as a context manager."""

    def __init__(self, recorder: TraceRecorder, name: str) -> None:
        self._recorder = recorder
        self.name = name
        self._lock = threading.RLock()

    def acquire(self) -> None:
        self._lock.acquire()
        self._recorder.record(Op.ACQUIRE, self.name)

    def release(self) -> None:
        self._recorder.record(Op.RELEASE, self.name)
        self._lock.release()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
