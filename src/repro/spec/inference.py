"""Atomicity-specification inference from traces.

The paper's evaluation hinges on a practical pain the introduction
spells out: "Atomicity specifications (i.e., which blocks of code
should be regarded as atomic) are hard to come by." Given a raw trace
whose begin/end markers carry method labels (what RoadRunner logs),
this module infers a specification that the trace *satisfies*, by
greedy refutation:

1. start with every labeled method atomic (the naive Table 2 spec);
2. filter the trace and run a checker;
3. on a violation, blame the method whose block the reporting thread
   had open at the violation, remove it from the candidate set;
4. repeat until the filtered trace is conflict serializable.

The result is a specification consistent with the observed execution —
the dynamic-analysis analog of the type-inference approaches the paper
cites ([17]: "constraint based type system inference for inferring
atomicity specifications"). Two honest caveats, also in the result
object: the spec is witnessed by *this* trace only (another schedule
may violate it — combine with :mod:`repro.sim.explore` for small
programs), and greedy blame is not guaranteed minimal (the cycle
involves at least two transactions; we drop the one AeroDrome reports,
which is the one whose check fired).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.violations import Violation
from ..trace.events import Op
from ..trace.trace import Trace
from .atomicity_spec import AtomicitySpec

# NOTE: ``repro.trace.filters`` imports this package for the spec model,
# so its ``apply_spec`` is imported lazily inside :func:`infer_spec`.


class InferenceError(RuntimeError):
    """The blame step could not identify a method to remove."""


@dataclass(frozen=True)
class InferredSpec:
    """Result of :func:`infer_spec`.

    Attributes:
        spec: The inferred specification (explicit method set).
        removed: Methods refuted, in removal order, each with the
            violation that blamed it.
        iterations: Number of check passes (``len(removed) + 1``).
        candidates: The initial labeled-method universe.
    """

    spec: AtomicitySpec
    removed: Tuple[Tuple[str, Violation], ...]
    iterations: int
    candidates: Tuple[str, ...]

    @property
    def atomic_methods(self) -> Set[str]:
        return set(self.spec.atomic_methods)

    @property
    def refuted_methods(self) -> List[str]:
        return [method for method, _ in self.removed]

    def __str__(self) -> str:
        kept = ", ".join(sorted(self.spec.atomic_methods)) or "(none)"
        dropped = ", ".join(self.refuted_methods) or "(none)"
        return (
            f"inferred spec after {self.iterations} pass(es): "
            f"atomic = {kept}; refuted = {dropped}"
        )


def labeled_methods(trace: Trace) -> Set[str]:
    """All method labels appearing on begin markers in ``trace``."""
    return {
        event.target
        for event in trace
        if event.op is Op.BEGIN and event.target is not None
    }


def _blame(filtered: Trace, violation: Violation) -> Optional[str]:
    """The label of the block the violating thread had open.

    Replays the filtered trace's markers up to the violation event and
    returns the *outermost* open label of the reporting thread — the
    outermost pair defines the transaction (§4.1.4), so it is the
    transaction on the cycle.
    """
    stack: Dict[str, List[Optional[str]]] = {}
    limit = violation.event_idx
    for event in filtered:
        if event.idx > limit:
            break
        if event.op is Op.BEGIN:
            stack.setdefault(event.thread, []).append(event.target)
        elif event.op is Op.END:
            frames = stack.get(event.thread)
            if frames:
                frames.pop()
    frames = stack.get(violation.thread) or []
    return frames[0] if frames else None


def infer_spec(
    trace: Trace,
    algorithm: str = "aerodrome",
    name: str = "inferred",
) -> InferredSpec:
    """Infer a trace-consistent atomicity specification (greedy).

    Args:
        trace: Raw trace with labeled begin/end markers.
        algorithm: Checker used for each pass. Must be one whose
            violations carry the reporting thread's active transaction
            (the AeroDrome and Velodrome families qualify).
        name: Name of the resulting specification.

    Raises:
        InferenceError: If a violation cannot be blamed on a labeled
            method (unlabeled markers, or a cycle purely among unary
            transactions) — no spec over the labels can fix those.
    """
    from ..trace.filters import apply_spec

    candidates = sorted(labeled_methods(trace))
    atomic: Set[str] = set(candidates)
    removed: List[Tuple[str, Violation]] = []
    iterations = 0
    while True:
        iterations += 1
        spec = AtomicitySpec.of(atomic, name=name)
        filtered = apply_spec(trace, spec)
        from ..api.session import check as check_trace

        result = check_trace(filtered, algorithm=algorithm)
        if result.serializable:
            return InferredSpec(
                spec=spec,
                removed=tuple(removed),
                iterations=iterations,
                candidates=tuple(candidates),
            )
        assert result.violation is not None
        method = _blame(filtered, result.violation)
        if method is None or method not in atomic:
            raise InferenceError(
                f"violation at event {result.violation.event_idx} cannot "
                "be blamed on a removable labeled method; the trace is "
                "non-serializable under the empty specification's residue"
            )
        atomic.discard(method)
        removed.append((method, result.violation))
