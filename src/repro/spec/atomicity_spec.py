"""Atomicity specifications.

An atomicity specification says which blocks of code (methods, in the
paper's Java benchmarks) are intended to be atomic. RoadRunner logs a
begin/end marker pair for *every* method entry/exit; the artifact's
``atom_spec.py`` then filters the raw trace, keeping only markers of
methods the specification declares atomic.

Two families of specifications appear in the evaluation:

* **Realistic** specs from DoubleChecker [5] (Table 1): a curated set of
  methods; transactions are small blocks, violations appear late.
* **Naive** specs (Table 2): every method except ``main`` and ``run`` is
  atomic; violations are found trivially in a short trace prefix.

:class:`AtomicitySpec` models both: an explicit atomic-method set, or a
default-atomic mode with an exclusion list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterable, Optional, Union

#: Method names the naive specification never marks atomic (paper §5.2).
NAIVE_EXCLUDED_METHODS = frozenset({"main", "run"})


@dataclass(frozen=True)
class AtomicitySpec:
    """Which method labels are considered atomic.

    Attributes:
        atomic_methods: Explicit set of atomic method names. Ignored when
            ``default_atomic`` is ``True``.
        excluded_methods: Methods that are *never* atomic (only meaningful
            with ``default_atomic=True``).
        default_atomic: If ``True``, every method not excluded is atomic
            (the paper's naive specification). If ``False``, only the
            methods in ``atomic_methods`` are atomic.
        name: Human-readable specification name for reports.
    """

    atomic_methods: FrozenSet[str] = frozenset()
    excluded_methods: FrozenSet[str] = frozenset()
    default_atomic: bool = False
    name: str = "spec"

    def is_atomic(self, method: Optional[str]) -> bool:
        """Whether a begin/end marker with label ``method`` is atomic.

        Unlabeled markers (``method is None``) are always kept: they come
        from sources that already applied a specification.
        """
        if method is None:
            return True
        if self.default_atomic:
            return method not in self.excluded_methods
        return method in self.atomic_methods

    @staticmethod
    def naive(name: str = "naive") -> "AtomicitySpec":
        """The paper's naive spec: all methods atomic except main/run."""
        return AtomicitySpec(
            excluded_methods=NAIVE_EXCLUDED_METHODS,
            default_atomic=True,
            name=name,
        )

    @staticmethod
    def of(methods: Iterable[str], name: str = "spec") -> "AtomicitySpec":
        """A realistic spec marking exactly ``methods`` atomic."""
        return AtomicitySpec(atomic_methods=frozenset(methods), name=name)

    @staticmethod
    def none(name: str = "none") -> "AtomicitySpec":
        """The empty specification: no labeled method is atomic."""
        return AtomicitySpec(name=name)


def load_spec(source: Union[str, Path], name: str = "") -> AtomicitySpec:
    """Load a specification file: one atomic method name per line.

    Lines starting with ``#`` are comments. An empty file yields the empty
    specification (matching the artifact's guidance for benchmarks without
    curated specs).
    """
    path = Path(source)
    methods = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if stripped and not stripped.startswith("#"):
            methods.append(stripped)
    return AtomicitySpec.of(methods, name=name or path.stem)


def save_spec(spec: AtomicitySpec, destination: Union[str, Path]) -> None:
    """Write an explicit specification to a file (one method per line)."""
    if spec.default_atomic:
        raise ValueError("default-atomic specs have no finite file form")
    lines = [f"# atomicity spec: {spec.name}"]
    lines.extend(sorted(spec.atomic_methods))
    Path(destination).write_text("\n".join(lines) + "\n", encoding="utf-8")
