"""Atomicity specification model, IO, and inference."""

from .atomicity_spec import (
    NAIVE_EXCLUDED_METHODS,
    AtomicitySpec,
    load_spec,
    save_spec,
)
from .inference import (
    InferenceError,
    InferredSpec,
    infer_spec,
    labeled_methods,
)

__all__ = [
    "AtomicitySpec",
    "NAIVE_EXCLUDED_METHODS",
    "load_spec",
    "save_spec",
    "infer_spec",
    "InferredSpec",
    "InferenceError",
    "labeled_methods",
]
