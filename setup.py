"""Legacy setup shim.

Lets ``pip install -e . --no-use-pep517`` work in offline environments
whose setuptools lacks the ``bdist_wheel`` command; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
